// Daemon soak bench: an in-process aisd server driven closed-loop over a
// repeated-body request mix, reporting cold-cache vs warm-cache latency
// from the daemon's own server_request_us histogram (snapshot deltas per
// phase), unix-vs-TCP warm throughput, a two-tenant QoS contention
// experiment, a shard-count contention sweep, and a leak gate over the
// soak (resident set must stop growing once the per-worker scratch pools
// and the schedule cache reach steady state).  CI perf-smoke runs this via
// scripts/bench_json.sh; see docs/SERVER.md.
//
//   bench_server [--requests N] [--bodies B] [--clients C] [--threads T]
//                [--blocks N] [--insts K] [--window W] [--machine NAME]
//                [--seed S] [--shards "1,4,16,64"] [--sweep-clients "64,128"]
//                [--json FILE] [--min-warm-speedup X] [--max-rss-growth-mb MB]
//                [--min-tcp-ratio X] [--qos-requests N] [--qos-bulk-clients N]
//                [--qos-bulk-depth N] [--max-qos-p99-factor X]
//                [--min-fifo-qos-ratio X]
//
// Phases (all through the real socket protocol, C client connections):
//   cold:  in-memory cache cleared, every body compiled once per round
//          until at least --cold-requests samples exist — every request
//          misses the trace cache.
//   warm:  one priming round, then --requests requests drawn uniformly
//          from the body pool — steady-state hits.  The leak gate samples
//          VmRSS after priming and again after the soak.
//   tcp:   a warm burst over the unix listener and the same burst over the
//          TCP listener; the gate bounds how much the TCP transport may
//          cost (--min-tcp-ratio, tcp_rps/unix_rps).
//   qos:   dedicated single-worker servers (dispatch_ahead=1 so admission
//          ordering binds): an interactive tenant alone (uncontended
//          baseline), then the same tenant against a saturating bulk
//          tenant under FIFO admission and under QoS admission.  Bulk and
//          interactive use the same body pool, so head-of-line blocking is
//          measured in units of one service time.  Gates: the QoS arm's
//          interactive p99 within --max-qos-p99-factor of uncontended, and
//          FIFO at least --min-fifo-qos-ratio worse than QoS.
//   sweep: per (clients, shard count), cache rebuilt + primed, then a
//          timed burst; reported as requests/second.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/schedule_cache.hpp"
#include "ir/instruction.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "workloads/random_ir.hpp"

namespace {

using namespace ais;

std::string render_trace(const Trace& trace) {
  std::string text;
  for (const BasicBlock& bb : trace.blocks) {
    text += "block " + bb.label + ":\n";
    for (const Instruction& inst : bb.insts) {
      text += "  " + inst.to_string() + "\n";
    }
  }
  return text;
}

/// Current resident set in bytes from /proc/self/statm (0 off-Linux, which
/// disables the leak gate rather than failing it).
std::int64_t current_rss_bytes() {
  std::ifstream in("/proc/self/statm");
  if (!in.is_open()) return 0;
  long long total_pages = 0;
  long long resident_pages = 0;
  in >> total_pages >> resident_pages;
  if (!in.good()) return 0;
  return static_cast<std::int64_t>(resident_pages) *
         static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
}

/// Per-phase view of a monotone histogram: counts accumulated since `from`.
obs::HistogramSnapshot snapshot_delta(const obs::HistogramSnapshot& from,
                                      const obs::HistogramSnapshot& to) {
  obs::HistogramSnapshot d;
  for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    d.counts[i] = to.counts[i] - from.counts[i];
  }
  d.count = to.count - from.count;
  d.sum = to.sum - from.sum;
  d.max = to.max;  // upper clamp only; fine for per-phase quantiles
  return d;
}

/// A drive target: the unix socket path or a TCP host:port.
struct Target {
  std::string address;
  bool tcp = false;
};

bool connect_target(server::Client& client, const Target& target,
                    std::string* error) {
  return target.tcp ? client.connect_tcp(target.address, error)
                    : client.connect(target.address, error);
}

struct DriveStats {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  double elapsed_s = 0;
  double rps() const {
    return elapsed_s > 0 ? static_cast<double>(ok + errors) / elapsed_s : 0;
  }
};

/// Closed-loop drive: `clients` connections, each keeping one request in
/// flight, until `requests` total have been answered.  pick(id) selects the
/// body for request id.
template <typename PickBody>
DriveStats drive(const Target& target, std::size_t requests,
                 std::size_t clients, const std::string& machine, int window,
                 const PickBody& pick) {
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      server::Client client;
      std::string error;
      if (!connect_target(client, target, &error)) {
        std::fprintf(stderr, "bench_server: connect: %s\n", error.c_str());
        return;
      }
      server::Request req;
      req.verb = server::kVerbCompile;
      req.options["mode"] = "trace";
      req.options["machine"] = machine;
      req.options["window"] = std::to_string(window);
      for (;;) {
        const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
        if (id >= requests) return;
        req.body = pick(id);
        server::Response resp;
        if (!client.call(req, &resp, &error)) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        (resp.ok ? ok : errors).fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  DriveStats stats;
  stats.ok = ok.load();
  stats.errors = errors.load();
  stats.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  return stats;
}

std::vector<std::size_t> parse_counts(const std::string& spec) {
  std::vector<std::size_t> out;
  std::istringstream in(spec);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoul(tok));
  }
  return out;
}

std::int64_t percentile(std::vector<std::int64_t>& latencies, double p) {
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  const double rank = p * static_cast<double>(latencies.size() - 1);
  return latencies[static_cast<std::size_t>(rank + 0.5)];
}

/// One arm of the QoS experiment: a dedicated single-worker server with
/// dispatch_ahead=1 (the admission queue, not the pool FIFO, orders the
/// waiting work), an interactive tenant issuing `interactive_requests`
/// closed-loop, and `bulk_clients` bulk-tenant connections each keeping
/// `bulk_depth` pipelined requests in flight until the interactive tenant
/// finishes.  Pipelining matters on this single-core container: it keeps
/// the server-side backlog deep (bulk_clients * bulk_depth queued) with
/// only a couple of mostly-blocked client threads, so the interactive
/// client's latency measures the server's queueing discipline rather than
/// the bench's own thread-scheduling noise.  Client-side latency
/// percentiles for the interactive tenant come back in the result.
struct QosArm {
  double interactive_p50_us = 0;
  double interactive_p99_us = 0;
  std::uint64_t errors = 0;
};

QosArm run_qos_arm(bool qos, std::size_t interactive_requests,
                   std::size_t bulk_clients, std::size_t bulk_depth,
                   const std::vector<std::string>& pool,
                   const std::string& machine, int window,
                   std::uint64_t seed, int arm_id) {
  server::ServerOptions options;
  options.socket_path = "/tmp/bench_server_qos." + std::to_string(getpid()) +
                        "." + std::to_string(arm_id) + ".sock";
  options.threads = 1;
  options.dispatch_ahead = 1;
  // Batch granularity 1: a gathered micro-batch is already out of the
  // admission queue, so anything in it rides ahead of a later interactive
  // arrival.  With batch_max=1 the admission queue is the only queueing
  // discipline and the inversion window is a single service time.
  options.batch_max = 1;
  options.admission.qos = qos;
  server::Server srv(options);
  std::string error;
  QosArm arm;
  if (!srv.start(&error)) {
    std::fprintf(stderr, "bench_server: qos arm: %s\n", error.c_str());
    arm.errors = 1;
    return arm;
  }
  const Target target{options.socket_path, /*tcp=*/false};
  // Warm the shared cache so every request in the timed section is a hit:
  // the experiment measures queueing policy, not compile variance.
  ScheduleCache::global().clear();
  drive(target, pool.size(), 4, machine, window,
        [&](std::size_t id) -> const std::string& {
          return pool[id % pool.size()];
        });

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> bulk;
  bulk.reserve(bulk_clients);
  for (std::size_t b = 0; b < bulk_clients; ++b) {
    bulk.emplace_back([&, b] {
      server::Client client;
      std::string err;
      if (!connect_target(client, target, &err)) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      server::Request req;
      req.verb = server::kVerbCompile;
      req.options["mode"] = "trace";
      req.options["machine"] = machine;
      req.options["window"] = std::to_string(window);
      req.options["priority"] = "bulk";
      req.options["tenant"] = "batch";
      Prng prng(seed * 31 + b);
      std::size_t outstanding = 0;
      auto send_one = [&]() -> bool {
        req.body = pool[prng.index(pool.size())];
        if (!client.send(req, &err)) return false;
        ++outstanding;
        return true;
      };
      auto receive_one = [&]() -> bool {
        server::Response resp;
        if (!client.receive(&resp, &err)) return false;
        if (!resp.ok) errors.fetch_add(1, std::memory_order_relaxed);
        --outstanding;
        return true;
      };
      for (std::size_t i = 0; i < bulk_depth; ++i) {
        if (!send_one()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      while (!stop.load(std::memory_order_relaxed)) {
        if (!receive_one() || !send_one()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      while (outstanding > 0) {  // drain the pipeline before disconnect
        if (!receive_one()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  std::vector<std::int64_t> latency;
  latency.reserve(interactive_requests);
  {
    server::Client client;
    std::string err;
    if (!connect_target(client, target, &err)) {
      errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      server::Request req;
      req.verb = server::kVerbCompile;
      req.options["mode"] = "trace";
      req.options["machine"] = machine;
      req.options["window"] = std::to_string(window);
      req.options["priority"] = "interactive";
      req.options["tenant"] = "web";
      Prng prng(seed * 17 + 3);
      for (std::size_t i = 0; i < interactive_requests; ++i) {
        req.body = pool[prng.index(pool.size())];
        const auto t0 = std::chrono::steady_clock::now();
        server::Response resp;
        if (!client.call(req, &resp, &err)) {
          errors.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const auto t1 = std::chrono::steady_clock::now();
        latency.push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count());
        if (!resp.ok) errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : bulk) t.join();
  srv.stop();

  arm.interactive_p50_us =
      static_cast<double>(percentile(latency, 0.50));
  arm.interactive_p99_us =
      static_cast<double>(percentile(latency, 0.99));
  arm.errors = errors.load();
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t requests =
      static_cast<std::size_t>(args.get_int("requests", 100'000));
  const std::size_t cold_requests =
      static_cast<std::size_t>(args.get_int("cold-requests", 2'000));
  const std::size_t bodies =
      static_cast<std::size_t>(args.get_int("bodies", 256));
  const std::size_t clients =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.get_int("clients", 8)));
  const int blocks = static_cast<int>(args.get_int("blocks", 4));
  const int insts = static_cast<int>(args.get_int("insts", 12));
  const int window = static_cast<int>(args.get_int("window", 2));
  const std::string machine = args.get_string("machine", "rs6000");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double min_warm_speedup = args.get_double("min-warm-speedup", 0.0);
  const double max_rss_growth_mb = args.get_double("max-rss-growth-mb", 0.0);
  const double min_tcp_ratio = args.get_double("min-tcp-ratio", 0.0);
  const std::size_t qos_requests =
      static_cast<std::size_t>(args.get_int("qos-requests", 2'000));
  const std::size_t qos_bulk_clients =
      static_cast<std::size_t>(args.get_int("qos-bulk-clients", 1));
  const std::size_t qos_bulk_depth =
      static_cast<std::size_t>(args.get_int("qos-bulk-depth", 16));
  const double max_qos_p99_factor =
      args.get_double("max-qos-p99-factor", 0.0);
  const double min_fifo_qos_ratio =
      args.get_double("min-fifo-qos-ratio", 0.0);
  const std::vector<std::size_t> shard_counts =
      parse_counts(args.get_string("shards", "1,4,16,64"));
  const std::vector<std::size_t> sweep_clients =
      parse_counts(args.get_string("sweep-clients", ""));

  // Body pool: `bodies` distinct traces; a request mix drawn uniformly from
  // it re-compiles every body requests/bodies times — the repeated-body
  // warm-cache regime.
  Prng prng(seed);
  RandomIrParams ir_params;
  ir_params.num_insts = insts;
  std::vector<std::string> pool;
  pool.reserve(bodies);
  for (std::size_t i = 0; i < bodies; ++i) {
    pool.push_back(render_trace(random_ir_trace(prng, ir_params, blocks)));
  }

  server::ServerOptions options;
  options.socket_path =
      "/tmp/bench_server." + std::to_string(getpid()) + ".sock";
  options.tcp_addr = "127.0.0.1:0";
  options.threads = static_cast<int>(args.get_int("threads", 0));
  server::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_server: %s\n", error.c_str());
    return 2;
  }
  const Target unix_target{options.socket_path, /*tcp=*/false};
  const Target tcp_target{
      "127.0.0.1:" + std::to_string(server.tcp_port()), /*tcp=*/true};
  ScheduleCache& cache = ScheduleCache::global();
  cache.set_enabled(true);

  obs::Histogram* request_us = obs::MetricRegistry::global().histogram(
      "server_request_us", {"outcome", "ok"});

  // --- cold phase: every request misses the trace cache -------------------
  Prng mix_prng(seed ^ 0x5eedULL);
  const obs::HistogramSnapshot before_cold = request_us->snapshot();
  DriveStats cold;
  {
    // Round-robin over the pool, clearing the cache between rounds so
    // repeats of a body never hit.
    std::size_t done = 0;
    while (done < cold_requests) {
      cache.clear();
      const std::size_t round = std::min(bodies, cold_requests - done);
      const DriveStats r =
          drive(unix_target, round, clients, machine, window,
                [&](std::size_t id) -> const std::string& {
                  return pool[id % bodies];
                });
      cold.ok += r.ok;
      cold.errors += r.errors;
      cold.elapsed_s += r.elapsed_s;
      done += round;
    }
  }
  const obs::HistogramSnapshot cold_hist =
      snapshot_delta(before_cold, request_us->snapshot());

  // --- warm phase + soak leak gate ----------------------------------------
  cache.clear();
  // Priming round: one compile per body fills the cache.
  drive(unix_target, bodies, clients, machine, window,
        [&](std::size_t id) -> const std::string& { return pool[id % bodies]; });
  const std::int64_t rss_after_prime = current_rss_bytes();

  std::vector<std::uint32_t> picks(requests);
  for (std::uint32_t& p : picks) {
    p = static_cast<std::uint32_t>(mix_prng.index(bodies));
  }
  const obs::HistogramSnapshot before_warm = request_us->snapshot();
  const DriveStats warm =
      drive(unix_target, requests, clients, machine, window,
            [&](std::size_t id) -> const std::string& {
              return pool[picks[id]];
            });
  const obs::HistogramSnapshot warm_hist =
      snapshot_delta(before_warm, request_us->snapshot());
  const std::int64_t rss_after_soak = current_rss_bytes();
  const double rss_growth_mb =
      static_cast<double>(rss_after_soak - rss_after_prime) /
      (1024.0 * 1024.0);

  // --- tcp phase: same warm burst over both transports --------------------
  const std::size_t burst_requests = std::min<std::size_t>(requests, 20'000);
  auto pick_burst = [&](std::size_t id) -> const std::string& {
    return pool[picks[id % picks.size()]];
  };
  const DriveStats unix_burst =
      drive(unix_target, burst_requests, clients, machine, window,
            pick_burst);
  const DriveStats tcp_burst =
      drive(tcp_target, burst_requests, clients, machine, window,
            pick_burst);
  const double tcp_ratio =
      unix_burst.rps() > 0 ? tcp_burst.rps() / unix_burst.rps() : 0.0;

  // --- shard sweep: contention on the shared cache ------------------------
  // The server is quiescent between phases (every drive() call joins its
  // clients after their last reply), which is what set_shard_count needs.
  struct SweepRow {
    std::size_t clients = 0;
    std::size_t shards = 0;
    double rps = 0;
  };
  std::vector<SweepRow> sweep;
  auto run_sweep_point = [&](std::size_t n_clients, std::size_t n_shards) {
    cache.set_shard_count(n_shards);
    drive(unix_target, bodies, n_clients, machine, window,
          [&](std::size_t id) -> const std::string& {
            return pool[id % bodies];
          });
    const DriveStats burst =
        drive(unix_target, burst_requests, n_clients, machine, window,
              pick_burst);
    sweep.push_back({n_clients, cache.shard_count(), burst.rps()});
  };
  for (const std::size_t n : shard_counts) run_sweep_point(clients, n);
  // Optional high-fan-out matrix (--sweep-clients): every extra client
  // count crossed with every shard count.
  for (const std::size_t extra_clients : sweep_clients) {
    for (const std::size_t n : shard_counts) {
      run_sweep_point(extra_clients, n);
    }
  }
  cache.set_shard_count(ScheduleCache::kNumShards);

  server.stop();

  // --- qos phase: two tenant classes on dedicated single-worker servers ---
  const QosArm uncontended = run_qos_arm(
      /*qos=*/true, qos_requests, 0, qos_bulk_depth, pool, machine, window,
      seed, 0);
  const QosArm fifo = run_qos_arm(
      /*qos=*/false, qos_requests, qos_bulk_clients, qos_bulk_depth, pool,
      machine, window, seed, 1);
  const QosArm qos = run_qos_arm(
      /*qos=*/true, qos_requests, qos_bulk_clients, qos_bulk_depth, pool,
      machine, window, seed, 2);
  const double qos_factor = uncontended.interactive_p99_us > 0
                                ? qos.interactive_p99_us /
                                      uncontended.interactive_p99_us
                                : 0.0;
  const double fifo_factor = uncontended.interactive_p99_us > 0
                                 ? fifo.interactive_p99_us /
                                       uncontended.interactive_p99_us
                                 : 0.0;
  const double fifo_qos_ratio =
      qos.interactive_p99_us > 0
          ? fifo.interactive_p99_us / qos.interactive_p99_us
          : 0.0;

  const double cold_p50 = static_cast<double>(cold_hist.quantile(0.50));
  const double cold_p99 = static_cast<double>(cold_hist.quantile(0.99));
  const double warm_p50 = static_cast<double>(warm_hist.quantile(0.50));
  const double warm_p99 = static_cast<double>(warm_hist.quantile(0.99));
  const double speedup = warm_p50 > 0 ? cold_p50 / warm_p50 : 0.0;

  std::printf("bench_server: cold  %llu requests p50=%.0fus p99=%.0fus "
              "(%.1f req/s)\n",
              static_cast<unsigned long long>(cold_hist.count), cold_p50,
              cold_p99, cold.rps());
  std::printf("bench_server: warm  %llu requests p50=%.0fus p99=%.0fus "
              "(%.1f req/s), p50 speedup %.2fx\n",
              static_cast<unsigned long long>(warm_hist.count), warm_p50,
              warm_p99, warm.rps(), speedup);
  std::printf("bench_server: soak rss growth %.1f MiB "
              "(prime %.1f -> soak %.1f)\n",
              rss_growth_mb,
              static_cast<double>(rss_after_prime) / (1024.0 * 1024.0),
              static_cast<double>(rss_after_soak) / (1024.0 * 1024.0));
  std::printf("bench_server: tcp   unix %.1f req/s, tcp %.1f req/s "
              "(ratio %.2f)\n",
              unix_burst.rps(), tcp_burst.rps(), tcp_ratio);
  std::printf("bench_server: qos   interactive p99 uncontended=%.0fus "
              "fifo=%.0fus (%.1fx) qos=%.0fus (%.1fx)\n",
              uncontended.interactive_p99_us, fifo.interactive_p99_us,
              fifo_factor, qos.interactive_p99_us, qos_factor);
  for (const SweepRow& row : sweep) {
    std::printf("bench_server: clients=%zu shards=%zu %.1f req/s\n",
                row.clients, row.shards, row.rps);
  }

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "bench_server: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << "{\"benchmark\": \"server\", \"requests\": " << requests
        << ", \"bodies\": " << bodies << ", \"clients\": " << clients
        << ", \"machine\": \"" << machine << "\", \"window\": " << window
        << ", \"cold_p50_us\": " << cold_p50
        << ", \"cold_p99_us\": " << cold_p99
        << ", \"cold_rps\": " << cold.rps()
        << ", \"warm_p50_us\": " << warm_p50
        << ", \"warm_p99_us\": " << warm_p99
        << ", \"warm_rps\": " << warm.rps()
        << ", \"warm_speedup_p50\": " << speedup
        << ", \"rss_growth_mb\": " << rss_growth_mb
        << ", \"tcp\": {\"unix_rps\": " << unix_burst.rps()
        << ", \"tcp_rps\": " << tcp_burst.rps()
        << ", \"ratio\": " << tcp_ratio << "}"
        << ", \"qos\": {\"bulk_clients\": " << qos_bulk_clients
        << ", \"bulk_depth\": " << qos_bulk_depth
        << ", \"uncontended_p50_us\": " << uncontended.interactive_p50_us
        << ", \"uncontended_p99_us\": " << uncontended.interactive_p99_us
        << ", \"fifo_p99_us\": " << fifo.interactive_p99_us
        << ", \"fifo_factor\": " << fifo_factor
        << ", \"qos_p99_us\": " << qos.interactive_p99_us
        << ", \"qos_factor\": " << qos_factor << "}"
        << ", \"shards\": [";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      out << (i > 0 ? ", " : "") << "{\"clients\": " << sweep[i].clients
          << ", \"shards\": " << sweep[i].shards
          << ", \"rps\": " << sweep[i].rps << "}";
    }
    out << "]}\n";
  }

  int rc = 0;
  const std::uint64_t total_errors = cold.errors + warm.errors +
                                     unix_burst.errors + tcp_burst.errors +
                                     uncontended.errors + fifo.errors +
                                     qos.errors;
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_server: %llu requests failed\n",
                 static_cast<unsigned long long>(total_errors));
    rc = 1;
  }
  if (min_warm_speedup > 0 && speedup < min_warm_speedup) {
    std::fprintf(stderr,
                 "bench_server: warm p50 speedup %.2fx below gate %.2fx\n",
                 speedup, min_warm_speedup);
    rc = 1;
  }
  if (max_rss_growth_mb > 0 && rss_growth_mb > max_rss_growth_mb) {
    std::fprintf(stderr,
                 "bench_server: soak RSS growth %.1f MiB exceeds budget "
                 "%.1f MiB\n",
                 rss_growth_mb, max_rss_growth_mb);
    rc = 1;
  }
  if (min_tcp_ratio > 0 && tcp_ratio < min_tcp_ratio) {
    std::fprintf(stderr,
                 "bench_server: tcp/unix throughput ratio %.2f below gate "
                 "%.2f\n",
                 tcp_ratio, min_tcp_ratio);
    rc = 1;
  }
  if (max_qos_p99_factor > 0 && qos_factor > max_qos_p99_factor) {
    std::fprintf(stderr,
                 "bench_server: qos interactive p99 factor %.2fx exceeds "
                 "gate %.2fx\n",
                 qos_factor, max_qos_p99_factor);
    rc = 1;
  }
  if (min_fifo_qos_ratio > 0 && fifo_qos_ratio < min_fifo_qos_ratio) {
    std::fprintf(stderr,
                 "bench_server: fifo/qos interactive p99 ratio %.2f below "
                 "gate %.2f (fifo should be measurably worse)\n",
                 fifo_qos_ratio, min_fifo_qos_ratio);
    rc = 1;
  }
  return rc;
}
