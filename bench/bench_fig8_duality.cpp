// E4 (paper Figure 8): the duality counterexample.
//
// The §5.2.1 single-source construction erases the asymmetry between the
// two sources (both carried edges collapse onto the dummy sink), so it
// cannot distinguish order 1-2-3 (5n-1 cycles for n iterations, in order)
// from 2-1-3 (4n cycles).  The §5.2.2 single-sink construction recovers the
// asymmetry, and the §5.2.3 general case selects 2-1-3.
#include <cstdio>
#include <string>

#include "core/loop_single.hpp"
#include "machine/machine_model.hpp"
#include "sim/loop_sim.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/paper_graphs.hpp"

namespace {

using namespace ais;

std::string order_names(const DepGraph& g, const std::vector<NodeId>& order) {
  std::string out;
  for (const NodeId id : order) {
    if (!out.empty()) out += ' ';
    out += g.node(id).name;
  }
  return out;
}

}  // namespace

int main() {
  using namespace ais;

  const DepGraph g = fig8_loop();
  const MachineModel machine = scalar01();
  const int n = 16;

  std::printf("E4 / Figure 8: single-source vs duality (W = 1, n = %d)\n\n",
              n);

  const std::vector<NodeId> s1 = {g.find("1"), g.find("2"), g.find("3")};
  const std::vector<NodeId> s2 = {g.find("2"), g.find("1"), g.find("3")};
  TextTable t({"schedule", "completion of n iterations", "paper"});
  t.add_row({"S1 = 1 2 3",
             std::to_string(simulate_loop(g, machine, s1, 1, n).completion),
             std::to_string(5 * n - 1) + "  (5n-1)"});
  t.add_row({"S2 = 2 1 3",
             std::to_string(simulate_loop(g, machine, s2, 1, n).completion),
             std::to_string(4 * n) + "  (4n)"});
  std::printf("%s\n", t.to_string().c_str());

  const auto evaluator = [&](const std::vector<NodeId>& order) {
    return steady_state_period(g, machine, order, 1);
  };

  // The symmetric source-form candidates vs the asymmetric sink form.
  LoopSingleOptions opts;
  opts.prune = LoopSingleOptions::Prune::kNever;
  TextTable cands({"pivot", "form", "order", "cycles/iter (W=1)"});
  for (const auto& cand : loop_single_candidates(g, machine, opts)) {
    cands.add_row({g.node(cand.pivot).name,
                   cand.source_form ? "source (5.2.1)" : "sink (5.2.2)",
                   order_names(g, cand.order),
                   fmt_double(evaluator(cand.order), 1)});
  }
  std::printf("candidates:\n%s\n", cands.to_string().c_str());

  const LoopCandidate best =
      schedule_single_block_loop(g, machine, evaluator, opts);
  std::printf("general case (5.2.3) selects: %s -> %s cycles/iteration "
              "(paper: 2 1 3 at 4.0)\n",
              order_names(g, best.order).c_str(),
              fmt_double(evaluator(best.order), 1).c_str());
  return 0;
}
