// E11: scheduler runtime scaling (google-benchmark).
//
// The paper defers empirical evaluation; §4.1 argues the deadline-relaxation
// loop does not change the asymptotic cost.  This bench measures wall time
// of the Rank Algorithm, Delay_Idle_Slots and full Algorithm Lookahead as
// block / trace size grows.
#include <algorithm>
#include <string>

#include <benchmark/benchmark.h>

#include "cfg/cfg.hpp"
#include "core/lookahead.hpp"
#include "core/merge.hpp"
#include "core/move_idle.hpp"
#include "core/rank.hpp"
#include "core/schedule_cache.hpp"
#include "driver/anticipatory.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "workloads/random_graphs.hpp"

namespace {

using namespace ais;

DepGraph make_block(int n) {
  Prng prng(0xb10c + static_cast<std::uint64_t>(n));
  RandomBlockParams params;
  params.num_nodes = n;
  params.edge_prob = 8.0 / n;  // constant average degree
  return random_block(prng, params);
}

/// Narrow latency-rich block (deep layered chains): its schedules stall, so
/// Delay_Idle_Slots and Chop actually do work (the interesting regime).
DepGraph make_stalling_block(int n) {
  Prng prng(0x57a1 + static_cast<std::uint64_t>(n));
  RandomBlockParams params;
  params.num_nodes = n;
  params.layers = std::max(2, n / 2);
  params.edge_prob = 0.8;
  params.max_latency = 3;
  return random_block(prng, params);
}

void BM_RankAlgorithm(benchmark::State& state) {
  const DepGraph g = make_block(static_cast<int>(state.range(0)));
  const MachineModel machine = scalar01();
  const RankScheduler scheduler(g, machine);
  const NodeSet all = NodeSet::all(g.num_nodes());
  const DeadlineMap d = uniform_deadlines(g, huge_deadline(g, all));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.run(all, d, {}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RankAlgorithm)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_DelayIdleSlots(benchmark::State& state) {
  const DepGraph g = make_stalling_block(static_cast<int>(state.range(0)));
  const MachineModel machine = deep_pipeline();
  const RankScheduler scheduler(g, machine);
  const NodeSet all = NodeSet::all(g.num_nodes());
  DeadlineMap base = uniform_deadlines(g, huge_deadline(g, all));
  RankResult r = scheduler.run(all, base, {});
  for (const NodeId id : all.ids()) base[id] = r.makespan;
  for (auto _ : state) {
    DeadlineMap d = base;
    Schedule s = r.schedule;
    benchmark::DoNotOptimize(delay_idle_slots(scheduler, std::move(s), d, {}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DelayIdleSlots)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// Merge's relaxation loop in the restricted case (galloping + bisection on
// the relax amount; see src/core/merge.cpp).  Old-block deadlines are pinned
// to their standalone completions, so fitting the incoming block forces a
// relaxation well past zero every iteration.
void BM_MergeRelaxation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Prng prng(0x3e61 + static_cast<std::uint64_t>(n));
  RandomTraceParams params;
  params.num_blocks = 2;
  params.block.num_nodes = n;
  params.block.edge_prob = 4.0 / n;
  params.cross_edges = 4;
  const DepGraph g = random_trace(prng, params);
  const MachineModel machine = scalar01();
  const RankScheduler scheduler(g, machine);
  const std::vector<NodeSet> blocks = blocks_of(g);
  const Time huge = huge_deadline(g, NodeSet::all(g.num_nodes()));
  DeadlineMap deadlines = uniform_deadlines(g, huge);
  const RankResult old_alone = scheduler.run(blocks[0], deadlines, {});
  for (const NodeId id : blocks[0].ids()) {
    deadlines[id] = old_alone.schedule.completion(id);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(merge_blocks(scheduler, blocks[0], blocks[1],
                                          deadlines, old_alone.makespan, huge,
                                          {}));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MergeRelaxation)->RangeMultiplier(2)->Range(16, 256)->Complexity();

/// Program of `segments` identical straight-line loop bodies, each closed by
/// a self back edge.  With the back edges hot, trace selection yields one
/// equal-weight single-block trace per segment — a balanced fan-out for
/// compile_program's --jobs pool.  (Without the back edges the fallthrough
/// chain fuses everything into one giant trace and nothing parallelizes.)
Program make_wide_program(int segments) {
  std::string text;
  for (int k = 0; k < segments; ++k) {
    const std::string s = std::to_string(k);
    text += "block body" + s + ":\n";
    text += "  LDU r1, a[r9+" + std::to_string(8 * k) + "]\n";
    text += "  LDU r2, b[r9+" + std::to_string(8 * k + 4) + "]\n";
    for (int round = 0; round < 8; ++round) {
      text += "  MUL r3, r1, r2\n  ADD r4, r3, r1\n  SUB r5, r4, r2\n";
      text += "  SHL r6, r5, 1\n  ADD r7, r6, r3\n  MUL r8, r7, r4\n";
      text += "  ADD r1, r8, r5\n";
    }
    text += "  CMP c1, r1, 0\n  BT  c1, body" + s + "\n";
  }
  return parse_program(text);
}

/// Wall time of whole-program compilation at 1/2/4/8 jobs.  Speedup needs
/// hardware threads: on an N-core host the expected real-time ratio
/// jobs=1 : jobs=min(8, N) approaches min(8, N, #traces); a single-core
/// host shows flat real time (the pool adds only queueing overhead).
void BM_ParallelTraces(benchmark::State& state) {
  const int segments = 24;
  const Program prog = make_wide_program(segments);
  Cfg cfg(prog);
  for (int k = 0; k < segments; ++k) {
    cfg.set_branch_probability(cfg.find_label("body" + std::to_string(k)),
                               0.9);
  }
  const MachineModel machine = deep_pipeline();
  const int jobs = static_cast<int>(state.range(0));
  // Measure the raw solver: the bypass must reach the pool's worker
  // threads, so flip the global switch rather than the thread-local one.
  ScheduleCache::global().set_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compile_program(cfg, machine, /*window=*/4, /*verify=*/true, jobs));
  }
  ScheduleCache::global().set_enabled(true);
}
BENCHMARK(BM_ParallelTraces)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Two trace regimes: latency-rich blocks leave idle slots, so Chop emits
// prefixes and keeps the live set bounded (the paper's intended, roughly
// per-block-cost regime); dense stall-free blocks never produce a chop
// point and the live set grows with the trace (degenerate worst case).
void BM_LookaheadChoppable(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  Prng prng(0x7ace + static_cast<std::uint64_t>(blocks));
  RandomTraceParams params;
  params.num_blocks = blocks;
  params.block.num_nodes = 12;
  params.block.edge_prob = 0.35;
  params.block.max_latency = 3;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  const MachineModel machine = deep_pipeline();
  const RankScheduler scheduler(g, machine);
  LookaheadOptions opts;
  opts.window = 4;
  const ScheduleCache::ScopedBypass bypass;  // measure the raw solver
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_trace(scheduler, opts));
  }
  state.SetComplexityN(blocks);
}
BENCHMARK(BM_LookaheadChoppable)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

void BM_LookaheadDense(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  Prng prng(0x7ace + static_cast<std::uint64_t>(blocks));
  RandomTraceParams params;
  params.num_blocks = blocks;
  params.block.num_nodes = 12;
  params.block.edge_prob = 0.3;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  const MachineModel machine = scalar01();
  const RankScheduler scheduler(g, machine);
  LookaheadOptions opts;
  opts.window = 4;
  const ScheduleCache::ScopedBypass bypass;  // measure the raw solver
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_trace(scheduler, opts));
  }
  state.SetComplexityN(blocks);
}
BENCHMARK(BM_LookaheadDense)->RangeMultiplier(2)->Range(2, 32)->Complexity();

// --- schedule cache -------------------------------------------------------

/// Warm trace-level hit: the first iteration populates the cache, every
/// further iteration is served from it (key build + certificate-free memory
/// hit + id remap).  Same workload as BM_LookaheadChoppable, so the
/// cold-vs-warm gap is read directly against that bench.
void BM_ScheduleCacheWarm(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  Prng prng(0x7ace + static_cast<std::uint64_t>(blocks));
  RandomTraceParams params;
  params.num_blocks = blocks;
  params.block.num_nodes = 12;
  params.block.edge_prob = 0.35;
  params.block.max_latency = 3;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  const MachineModel machine = deep_pipeline();
  const RankScheduler scheduler(g, machine);
  LookaheadOptions opts;
  opts.window = 4;
  ScheduleCache::global().set_enabled(true);
  ScheduleCache::global().clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_trace(scheduler, opts));
  }
  state.SetComplexityN(blocks);
}
BENCHMARK(BM_ScheduleCacheWarm)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

/// The §5 compile shape the cache exists for: the same loop body scheduled
/// again and again (wrap-around clone inside one compile, recompiles across
/// iterations of the bench loop).  Multi-block body so the compile takes
/// the schedule_loop_trace wrap-around path; latency-rich so the bypassed
/// solve does real Merge/Delay_Idle/Chop work.
Loop make_bench_loop() {
  std::string text;
  for (const char* label : {"head", "mid1", "mid2", "tail"}) {
    text += std::string("block ") + label + ":\n";
    for (int round = 0; round < 12; ++round) {
      text += "  LDU r1, a[r9+" + std::to_string(8 * round) + "]\n";
      text += "  MUL r3, r1, r2\n  ADD r4, r3, r1\n  SUB r5, r4, r2\n";
      text += "  MUL r6, r5, r1\n  ADD r7, r6, r3\n  ADD r2, r7, r5\n";
    }
  }
  text += "  CMP c1, r2, 0\n  BT  c1, head\n";
  Loop loop;
  loop.body = Trace{parse_program(text).blocks};
  return loop;
}

// --- lookahead simulator --------------------------------------------------

/// Latency-rich shape for the simulator benchmarks: a single dependence
/// chain with uniform [0, 3] edge latencies.  No reordering can hide the
/// latency, so most cycles are stalls and the cycle count dwarfs n — the
/// regime where the original engine's per-cycle window rescan and, worse,
/// its per-stall-cycle attribution scan over every remaining instruction
/// (O(n × edges) per stall) dominate survey and sweep runs.
DepGraph make_latency_chain_block(int n) {
  Prng prng(0x1a7e + static_cast<std::uint64_t>(n));
  RandomBlockParams params;
  params.num_nodes = n;
  params.layers = n;  // one node per layer: a chain
  params.edge_prob = 1.0;
  params.max_latency = 3;
  return random_block(prng, params);
}

/// The evaluation hot path: every paper-figure benchmark, window sweep and
/// `aisprof --random-traces` survey executes emitted code on the §2.3 window
/// simulator.
void BM_SimulateList(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const DepGraph g = make_latency_chain_block(n);
  const MachineModel machine = deep_pipeline();
  const RankScheduler scheduler(g, machine);
  LookaheadOptions opts;
  opts.window = 4;
  const ScheduleCache::ScopedBypass bypass;
  const std::vector<NodeId> list =
      schedule_trace(scheduler, opts).priority_list();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_list(g, machine, list, opts.window));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SimulateList)->Arg(64)->Arg(256)->Arg(1024);

/// The batched survey API: a mixed-size batch of latency-chain lists
/// through one simulate_many call.  Serial (threads = 1) so the number
/// measures the engine plus SimScratch reuse, not pool scaling — the
/// thread fan-out is exercised by the TSan CI job and the aisprof
/// surveys, where wall clock is the metric.
void BM_SimulateMany(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const MachineModel machine = deep_pipeline();
  const ScheduleCache::ScopedBypass bypass;
  std::vector<DepGraph> graphs;
  graphs.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    graphs.push_back(make_latency_chain_block(96 + 8 * (i % 9)));
  }
  std::vector<std::vector<NodeId>> lists;
  lists.reserve(graphs.size());
  for (const DepGraph& g : graphs) {
    const RankScheduler scheduler(g, machine);
    LookaheadOptions opts;
    opts.window = 4;
    lists.push_back(schedule_trace(scheduler, opts).priority_list());
  }
  std::vector<SimJob> jobs;
  jobs.reserve(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    jobs.push_back({&graphs[i], &machine, &lists[i], 4});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_many(jobs, 1));
  }
}
BENCHMARK(BM_SimulateMany)->Arg(16)->Arg(64);

void BM_LoopRepeatedBody_CacheOff(benchmark::State& state) {
  const Loop loop = make_bench_loop();
  const MachineModel machine = deep_pipeline();
  const ScheduleCache::ScopedBypass bypass;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule(loop, machine, /*window=*/4));
  }
}
BENCHMARK(BM_LoopRepeatedBody_CacheOff);

void BM_LoopRepeatedBody_CacheWarm(benchmark::State& state) {
  const Loop loop = make_bench_loop();
  const MachineModel machine = deep_pipeline();
  ScheduleCache::global().set_enabled(true);
  ScheduleCache::global().clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule(loop, machine, /*window=*/4));
  }
}
BENCHMARK(BM_LoopRepeatedBody_CacheWarm);

}  // namespace
