// E11: scheduler runtime scaling (google-benchmark).
//
// The paper defers empirical evaluation; §4.1 argues the deadline-relaxation
// loop does not change the asymptotic cost.  This bench measures wall time
// of the Rank Algorithm, Delay_Idle_Slots and full Algorithm Lookahead as
// block / trace size grows.
#include <algorithm>

#include <benchmark/benchmark.h>

#include "core/lookahead.hpp"
#include "core/move_idle.hpp"
#include "core/rank.hpp"
#include "machine/machine_model.hpp"
#include "workloads/random_graphs.hpp"

namespace {

using namespace ais;

DepGraph make_block(int n) {
  Prng prng(0xb10c + static_cast<std::uint64_t>(n));
  RandomBlockParams params;
  params.num_nodes = n;
  params.edge_prob = 8.0 / n;  // constant average degree
  return random_block(prng, params);
}

/// Narrow latency-rich block (deep layered chains): its schedules stall, so
/// Delay_Idle_Slots and Chop actually do work (the interesting regime).
DepGraph make_stalling_block(int n) {
  Prng prng(0x57a1 + static_cast<std::uint64_t>(n));
  RandomBlockParams params;
  params.num_nodes = n;
  params.layers = std::max(2, n / 2);
  params.edge_prob = 0.8;
  params.max_latency = 3;
  return random_block(prng, params);
}

void BM_RankAlgorithm(benchmark::State& state) {
  const DepGraph g = make_block(static_cast<int>(state.range(0)));
  const MachineModel machine = scalar01();
  const RankScheduler scheduler(g, machine);
  const NodeSet all = NodeSet::all(g.num_nodes());
  const DeadlineMap d = uniform_deadlines(g, huge_deadline(g, all));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.run(all, d, {}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RankAlgorithm)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_DelayIdleSlots(benchmark::State& state) {
  const DepGraph g = make_stalling_block(static_cast<int>(state.range(0)));
  const MachineModel machine = deep_pipeline();
  const RankScheduler scheduler(g, machine);
  const NodeSet all = NodeSet::all(g.num_nodes());
  DeadlineMap base = uniform_deadlines(g, huge_deadline(g, all));
  RankResult r = scheduler.run(all, base, {});
  for (const NodeId id : all.ids()) base[id] = r.makespan;
  for (auto _ : state) {
    DeadlineMap d = base;
    Schedule s = r.schedule;
    benchmark::DoNotOptimize(delay_idle_slots(scheduler, std::move(s), d, {}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DelayIdleSlots)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// Two trace regimes: latency-rich blocks leave idle slots, so Chop emits
// prefixes and keeps the live set bounded (the paper's intended, roughly
// per-block-cost regime); dense stall-free blocks never produce a chop
// point and the live set grows with the trace (degenerate worst case).
void BM_LookaheadChoppable(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  Prng prng(0x7ace + static_cast<std::uint64_t>(blocks));
  RandomTraceParams params;
  params.num_blocks = blocks;
  params.block.num_nodes = 12;
  params.block.edge_prob = 0.35;
  params.block.max_latency = 3;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  const MachineModel machine = deep_pipeline();
  const RankScheduler scheduler(g, machine);
  LookaheadOptions opts;
  opts.window = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_trace(scheduler, opts));
  }
  state.SetComplexityN(blocks);
}
BENCHMARK(BM_LookaheadChoppable)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

void BM_LookaheadDense(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  Prng prng(0x7ace + static_cast<std::uint64_t>(blocks));
  RandomTraceParams params;
  params.num_blocks = blocks;
  params.block.num_nodes = 12;
  params.block.edge_prob = 0.3;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  const MachineModel machine = scalar01();
  const RankScheduler scheduler(g, machine);
  LookaheadOptions opts;
  opts.window = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_trace(scheduler, opts));
  }
  state.SetComplexityN(blocks);
}
BENCHMARK(BM_LookaheadDense)->RangeMultiplier(2)->Range(2, 32)->Complexity();

}  // namespace
