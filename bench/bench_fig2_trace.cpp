// E2 (paper Figure 2 + §2.3): the two-block trace under a W = 2 lookahead
// window.
//
// Reproduces: the merged rank values (x=90, e=91, w=93, z=95, q=97, p=b=98,
// a=r=v=g=100), the legal makespan-11 schedule x e r w b z a q p v g, the
// no-cross-edge schedule of the figure, Algorithm Lookahead's emitted code,
// and the legality counterexample (z->q latency 0 violates the Window and
// Ordering Constraints for W = 2).
#include <cstdio>

#include "core/legality.hpp"
#include "core/lookahead.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/table.hpp"
#include "workloads/paper_graphs.hpp"

int main() {
  using namespace ais;

  const DepGraph g = fig2_trace();
  const MachineModel machine = scalar01();
  const RankScheduler scheduler(g, machine);
  const NodeSet all = NodeSet::all(g.num_nodes());
  const int window = 2;

  std::printf("E2 / Figure 2: two-block trace, W = %d (D = 100)\n\n", window);

  // Merged ranks.
  const RankResult merged = scheduler.run(all, uniform_deadlines(g, 100), {});
  TextTable ranks({"node", "rank", "paper"});
  const char* names[] = {"x", "e", "w", "z", "q", "p", "b", "v", "a", "r", "g"};
  const int paper[] = {90, 91, 93, 95, 97, 98, 98, 100, 100, 100, 100};
  for (int i = 0; i < 11; ++i) {
    ranks.add_row({names[i], std::to_string(merged.rank[g.find(names[i])]),
                   std::to_string(paper[i])});
  }
  std::printf("%s\n", ranks.to_string().c_str());
  std::printf("merged schedule (makespan %lld, paper: 11):\n  %s\n\n",
              static_cast<long long>(merged.makespan),
              format_timeline(merged.schedule).c_str());
  const LegalityReport legal = check_legal(scheduler, merged.schedule, window, 2);
  std::printf("legal for W = 2: %s\n\n", legal.legal ? "yes (paper: yes)"
                                                     : legal.reason.c_str());

  // Algorithm Lookahead end-to-end.
  LookaheadOptions opts;
  opts.window = window;
  opts.huge = 100;
  const LookaheadResult res = schedule_trace(scheduler, opts);
  std::printf("Algorithm Lookahead emitted code:\n");
  for (std::size_t b = 0; b < res.per_block.size(); ++b) {
    std::printf("  BB%zu:", b + 1);
    for (const NodeId id : res.per_block[b]) {
      std::printf(" %s", g.node(id).name.c_str());
    }
    std::printf("\n");
  }
  const SimResult sim = simulate_list(g, machine, res.priority_list(), window);
  std::printf("simulated completion at W = 2: %lld cycles (paper: 11)\n",
              static_cast<long long>(sim.completion));
  std::printf("z issues at cycle %lld, a at %lld"
              " (the in-window inversion of the example)\n\n",
              static_cast<long long>(sim.issue_time[g.find("z")]),
              static_cast<long long>(sim.issue_time[g.find("a")]));

  // The latency-0 counterexample.
  const DepGraph bad = fig2_trace_latency0();
  const RankScheduler bad_scheduler(bad, machine);
  const RankResult bad_merged =
      bad_scheduler.run(NodeSet::all(bad.num_nodes()),
                        uniform_deadlines(bad, 100), {});
  const LegalityReport bad_legal =
      check_legal(bad_scheduler, bad_merged.schedule, window, 2);
  std::printf("variant with z->q latency 0 (paper's counterexample):\n");
  std::printf("  naive merged schedule legal for W = 2: %s\n",
              bad_legal.legal ? "yes" : "NO (paper: no)");
  if (!bad_legal.legal) std::printf("  reason: %s\n", bad_legal.reason.c_str());
  return 0;
}
