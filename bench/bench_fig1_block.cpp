// E1 (paper Figure 1): the Rank Algorithm on basic block BB1, and the
// effect of delaying its idle slot.
//
// Reproduces: ranks under D = 100 (x = e = 95, w = b = 98, a = r = 100),
// the makespan-7 schedule with an idle slot at t = 2 (under the paper's
// tie-breaking), and the delayed schedule with the idle slot at t = 5.
#include <cstdio>
#include <string>

#include "core/deadlines.hpp"
#include "core/move_idle.hpp"
#include "core/rank.hpp"
#include "machine/machine_model.hpp"
#include "support/table.hpp"
#include "workloads/paper_graphs.hpp"

int main() {
  using namespace ais;

  const DepGraph g = fig1_bb1();
  const MachineModel machine = scalar01();
  const RankScheduler scheduler(g, machine);
  const NodeSet all = NodeSet::all(g.num_nodes());

  // The paper breaks the rank tie between e and x by listing e first.
  RankOptions opts;
  opts.tie_break.assign(g.num_nodes(), 0);
  opts.tie_break[g.find("e")] = -1;

  DeadlineMap d = uniform_deadlines(g, 100);
  RankResult r = scheduler.run(all, d, opts);

  std::printf("E1 / Figure 1: Rank Algorithm on BB1 (D = 100)\n\n");
  TextTable ranks({"node", "rank", "paper"});
  const char* names[] = {"x", "e", "w", "b", "r", "a"};
  const int paper_rank[] = {95, 95, 98, 98, 100, 100};
  for (int i = 0; i < 6; ++i) {
    ranks.add_row({names[i], std::to_string(r.rank[g.find(names[i])]),
                   std::to_string(paper_rank[i])});
  }
  std::printf("%s\n", ranks.to_string().c_str());

  std::printf("Rank Algorithm schedule (makespan %lld, paper: 7):\n  %s\n\n",
              static_cast<long long>(r.makespan),
              format_timeline(r.schedule).c_str());
  const auto before = r.schedule.idle_slots();
  std::printf("idle slot at t = %lld (paper: 2)\n\n",
              static_cast<long long>(before.empty() ? -1 : before[0].time));

  // Normalize deadlines to the achieved makespan and delay the idle slot.
  for (const NodeId id : all.ids()) d[id] = r.makespan;
  const Schedule delayed =
      delay_idle_slots(scheduler, std::move(r.schedule), d, opts);
  const auto after = delayed.idle_slots();
  std::printf("Schedule after Delay_Idle_Slots (makespan %lld, paper: 7):\n"
              "  %s\n\n",
              static_cast<long long>(delayed.makespan()),
              format_timeline(delayed).c_str());
  std::printf("idle slot at t = %lld (paper: 5)\n",
              static_cast<long long>(after.empty() ? -1 : after[0].time));
  return 0;
}
