// Shared helpers for the experiment binaries (E1-E11, see DESIGN.md §5).
#pragma once

#include <cmath>

#include <string>
#include <vector>

#include "baselines/block_schedulers.hpp"
#include "core/lookahead.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/stopwatch.hpp"
#include "support/str.hpp"

namespace ais::benchutil {

/// Simulated completion of a trace graph under every scheduler, in a fixed
/// order: anticipatory first, then the per-block baselines.  compile_ms is
/// the wall time the scheduler itself took (support/stopwatch — the one
/// clock in the tree; simulation time is excluded).
struct SchedulerRow {
  std::string name;
  Time cycles = 0;
  double compile_ms = 0;
};

inline std::vector<SchedulerRow> compare_schedulers(const DepGraph& g,
                                                    const MachineModel& machine,
                                                    int window) {
  std::vector<SchedulerRow> rows;

  LookaheadResult res;
  const double anticipatory_ms = timed_ms([&] {
    const RankScheduler scheduler(g, machine);
    LookaheadOptions opts;
    opts.window = window;
    res = schedule_trace(scheduler, opts);
  });
  rows.push_back({"anticipatory",
                  simulated_completion(g, machine, res.priority_list(),
                                       window),
                  anticipatory_ms});

  for (const BlockScheduler kind :
       {BlockScheduler::kRankDelayed, BlockScheduler::kRank,
        BlockScheduler::kCriticalPathList, BlockScheduler::kGibbonsMuchnick,
        BlockScheduler::kWarren, BlockScheduler::kSourceOrder}) {
    std::vector<NodeId> list;
    const double ms = timed_ms(
        [&] { list = schedule_trace_per_block(g, machine, kind); });
    rows.push_back({block_scheduler_name(kind),
                    simulated_completion(g, machine, list, window), ms});
  }
  return rows;
}

inline std::string fmt_time(Time t) { return std::to_string(t); }

/// Geometric-mean-friendly accumulator for cycle ratios.
class RatioMean {
 public:
  void add(double ratio) {
    log_sum_ += std::log(ratio);
    ++n_;
  }
  double geomean() const { return n_ == 0 ? 1.0 : std::exp(log_sum_ / n_); }
  int count() const { return n_; }

 private:
  double log_sum_ = 0;
  int n_ = 0;
};

}  // namespace ais::benchutil
