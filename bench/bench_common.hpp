// Shared helpers for the experiment binaries (E1-E11, see DESIGN.md §5).
#pragma once

#include <cmath>

#include <string>
#include <vector>

#include "baselines/block_schedulers.hpp"
#include "core/lookahead.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/stopwatch.hpp"
#include "support/str.hpp"

namespace ais::benchutil {

/// Simulated completion of a trace graph under every scheduler, in a fixed
/// order: anticipatory first, then the per-block baselines.  compile_ms is
/// the wall time the scheduler itself took (support/stopwatch — the one
/// clock in the tree; simulation time is excluded).
struct SchedulerRow {
  std::string name;
  Time cycles = 0;
  double compile_ms = 0;
};

/// A compiled priority list awaiting simulation (see simulate_many).
struct ScheduledList {
  std::string name;
  std::vector<NodeId> list;
  double compile_ms = 0;
};

/// The per-block baseline lists, in compare_schedulers' baseline order.
/// Window-independent: callers sweeping W compile these once per trace.
inline std::vector<ScheduledList> schedule_baselines(
    const DepGraph& g, const MachineModel& machine) {
  std::vector<ScheduledList> lists;
  for (const BlockScheduler kind :
       {BlockScheduler::kRankDelayed, BlockScheduler::kRank,
        BlockScheduler::kCriticalPathList, BlockScheduler::kGibbonsMuchnick,
        BlockScheduler::kWarren, BlockScheduler::kSourceOrder}) {
    std::vector<NodeId> list;
    const double ms = timed_ms(
        [&] { list = schedule_trace_per_block(g, machine, kind); });
    lists.push_back({block_scheduler_name(kind), std::move(list), ms});
  }
  return lists;
}

/// Anticipatory (compiled at `window`) followed by every baseline.
inline std::vector<ScheduledList> schedule_all(const DepGraph& g,
                                               const MachineModel& machine,
                                               int window) {
  std::vector<ScheduledList> lists;
  LookaheadResult res;
  const double anticipatory_ms = timed_ms([&] {
    const RankScheduler scheduler(g, machine);
    LookaheadOptions opts;
    opts.window = window;
    res = schedule_trace(scheduler, opts);
  });
  lists.push_back({"anticipatory", res.priority_list(), anticipatory_ms});
  for (ScheduledList& baseline : schedule_baselines(g, machine)) {
    lists.push_back(std::move(baseline));
  }
  return lists;
}

inline std::vector<SchedulerRow> compare_schedulers(const DepGraph& g,
                                                    const MachineModel& machine,
                                                    int window,
                                                    int sim_threads = 1) {
  const std::vector<ScheduledList> lists = schedule_all(g, machine, window);
  std::vector<SimJob> jobs;
  jobs.reserve(lists.size());
  for (const ScheduledList& l : lists) {
    jobs.push_back({&g, &machine, &l.list, window});
  }
  const std::vector<SimResult> sims = simulate_many(jobs, sim_threads);

  std::vector<SchedulerRow> rows;
  rows.reserve(lists.size());
  for (std::size_t i = 0; i < lists.size(); ++i) {
    rows.push_back({lists[i].name, sims[i].completion, lists[i].compile_ms});
  }
  return rows;
}

inline std::string fmt_time(Time t) { return std::to_string(t); }

/// Geometric-mean-friendly accumulator for cycle ratios.
class RatioMean {
 public:
  void add(double ratio) {
    log_sum_ += std::log(ratio);
    ++n_;
  }
  double geomean() const { return n_ == 0 ? 1.0 : std::exp(log_sum_ / n_); }
  int count() const { return n_; }

 private:
  double log_sum_ = 0;
  int n_ = 0;
};

}  // namespace ais::benchutil
