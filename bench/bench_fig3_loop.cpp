// E3 (paper Figure 3): the partial-product loop.
//
// Reproduces: the two candidate schedules (block-optimal L4 ST C4 M BT at 5
// cycles/block but 7 cycles/iteration steady-state; anticipatory
// L4 ST M C4 BT at 6 cycles/block and 6 cycles/iteration), and shows the
// §5.2.3 general-case algorithm selecting the anticipatory one (via the
// MULTIPLY source-node candidate, as the paper notes).  Both the
// hand-reconstructed graph and the graph derived from the paper's RS/6000
// instructions are exercised.
#include <cstdio>
#include <string>

#include "core/loop_single.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "sim/loop_sim.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"

namespace {

using namespace ais;

std::string order_names(const DepGraph& g, const std::vector<NodeId>& order) {
  std::string out;
  for (const NodeId id : order) {
    if (!out.empty()) out += ' ';
    out += g.node(id).name;
  }
  return out;
}

std::vector<NodeId> by_names(const DepGraph& g,
                             std::initializer_list<const char*> names) {
  std::vector<NodeId> ids;
  for (const char* n : names) ids.push_back(g.find(n));
  return ids;
}

}  // namespace

int main() {
  using namespace ais;

  const DepGraph g = fig3_loop();
  const MachineModel machine = scalar01();

  std::printf("E3 / Figure 3: partial-product loop (single basic block)\n\n");

  const auto sched1 = by_names(g, {"L4", "ST", "C4", "M", "BT"});
  const auto sched2 = by_names(g, {"L4", "ST", "M", "C4", "BT"});

  TextTable t({"schedule", "order", "block cycles", "steady-state (W=1)",
               "paper"});
  t.add_row({"1 (block-optimal)", order_names(g, sched1),
             std::to_string(simulate_loop(g, machine, sched1, 1, 1).completion),
             fmt_double(steady_state_period(g, machine, sched1, 1), 1),
             "5 / 7"});
  t.add_row({"2 (anticipatory)", order_names(g, sched2),
             std::to_string(simulate_loop(g, machine, sched2, 1, 1).completion),
             fmt_double(steady_state_period(g, machine, sched2, 1), 1),
             "6 / 6"});
  std::printf("%s\n", t.to_string().c_str());

  // Window sweep: the 7-vs-6 gap is an in-order (small W) phenomenon; a
  // large window lets the hardware repair schedule 1 on its own.
  TextTable sweep({"W", "schedule 1", "schedule 2"});
  for (const int w : {1, 2, 4, 8}) {
    sweep.add_row({std::to_string(w),
                   fmt_double(steady_state_period(g, machine, sched1, w), 2),
                   fmt_double(steady_state_period(g, machine, sched2, w), 2)});
  }
  std::printf("steady-state cycles/iteration vs window size:\n%s\n",
              sweep.to_string().c_str());

  // §5.2.3: candidates and selection.
  LoopSingleOptions opts;
  opts.prune = LoopSingleOptions::Prune::kNever;
  const auto evaluator = [&](const std::vector<NodeId>& order) {
    return steady_state_period(g, machine, order, 1);
  };
  TextTable cands({"pivot", "form", "order", "steady-state (W=1)"});
  for (const auto& cand : loop_single_candidates(g, machine, opts)) {
    cands.add_row({g.node(cand.pivot).name,
                   cand.source_form ? "source (5.2.1)" : "sink (5.2.2)",
                   order_names(g, cand.order),
                   fmt_double(evaluator(cand.order), 1)});
  }
  std::printf("general-case (5.2.3) candidates:\n%s\n",
              cands.to_string().c_str());

  const LoopCandidate best =
      schedule_single_block_loop(g, machine, evaluator, opts);
  std::printf("selected: %s (pivot %s, %s) -> %s cycles/iteration\n\n",
              order_names(g, best.order).c_str(),
              g.node(best.pivot).name.c_str(),
              best.source_form ? "source form" : "sink form",
              fmt_double(evaluator(best.order), 1).c_str());

  // End-to-end from the paper's instructions on the RS/6000-like machine.
  const DepGraph ir_graph =
      build_loop_graph(partial_product_kernel(), rs6000_like());
  const MachineModel rs = rs6000_like();
  const auto ir_eval = [&](const std::vector<NodeId>& order) {
    return steady_state_period(ir_graph, rs, order, 1);
  };
  const LoopCandidate ir_best =
      schedule_single_block_loop(ir_graph, rs, ir_eval, opts);
  std::printf("from RS/6000 instructions (CL.18): selected order\n  %s\n"
              "  steady state %s cycles/iteration (paper: 6)\n",
              order_names(ir_graph, ir_best.order).c_str(),
              fmt_double(ir_eval(ir_best.order), 1).c_str());
  return 0;
}
