// Telemetry overhead on the shipped example corpus — the gate behind the
// "metrics are cheap enough to leave on" claim in docs/OBSERVABILITY.md.
//
// Three arms per example, same binary (AIS_OBS compiled in):
//
//   base    = telemetry runtime-disabled (obs::set_enabled(false)): every
//             hook costs its relaxed-load gate and nothing else.  This is
//             the AIS_OBS=OFF stand-in measurable in-process; the compiled-
//             out build removes even the gate loads, so it can only be
//             faster than this baseline.
//   metrics = obs::enabled(): counters, phase aggregates, histograms and
//             the labeled registry all live.
//   flight  = metrics plus the crash flight recorder (per-span ring writes).
//
// Compiles run under ScheduleCache::ScopedBypass so every iteration is a
// fresh solve — warm cache hits would shrink compile times until the
// measurement is all noise.  The corpus-aggregate metrics overhead is the
// gated number (scripts/bench_json.py --obs, default ceiling 3%);
// per-example ratios on sub-100us compiles are fixed-cost dominated.
//
// A closing microbenchmark times raw obs::record_value() calls (ns/record,
// reported, not gated).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cfg/cfg.hpp"
#include "core/schedule_cache.hpp"
#include "driver/anticipatory.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "machine/machine_model.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/stats.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "verify/verify.hpp"

namespace {

using namespace ais;

struct ExampleSpec {
  const char* file;
  const char* mode;  // trace | loop | cfg — the example's natural shape
};

constexpr ExampleSpec kExamples[] = {
    {"fig3_loop.s", "loop"},
    {"two_block_trace.s", "trace"},
    {"memory_alias.s", "trace"},
    {"diamond_cfg.s", "cfg"},
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "bench_obs: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

void compile_once(const std::string& text, const std::string& mode,
                  const MachineModel& machine) {
  const Program prog = parse_program(text);
  if (mode == "cfg") {
    const Cfg cfg(prog);
    compile_program(cfg, machine, /*window=*/0, /*verify=*/true);
  } else if (mode == "loop") {
    Loop loop;
    loop.body = Trace{prog.blocks};
    const ScheduledLoop scheduled = schedule(loop, machine, 0);
    verify_schedule(loop, scheduled, machine);
  } else {
    const Trace trace{prog.blocks};
    const ScheduledTrace scheduled = schedule(trace, machine, 0);
    verify_schedule(trace, scheduled, machine);
  }
}

struct Row {
  std::string name;
  std::string mode;
  double base_ms = 0;
  double obs_ms = 0;
  double flight_ms = 0;
  double overhead_pct() const {
    return base_ms > 0 ? 100.0 * (obs_ms - base_ms) / base_ms : 0.0;
  }
  double flight_pct() const {
    return base_ms > 0 ? 100.0 * (flight_ms - base_ms) / base_ms : 0.0;
  }
};

Row measure(const ExampleSpec& spec, const std::string& dir,
            const MachineModel& machine, int repeat) {
  const std::string text = slurp(dir + "/" + spec.file);
  const std::string mode = spec.mode;

  std::vector<double> base_samples, obs_samples, flight_samples;
  for (int r = 0; r < repeat; ++r) {
    obs::set_flight_enabled(false);
    obs::set_enabled(false);
    base_samples.push_back(
        timed_ms([&] { compile_once(text, mode, machine); }));

    obs::set_enabled(true);
    obs_samples.push_back(
        timed_ms([&] { compile_once(text, mode, machine); }));

    obs::set_flight_enabled(true);
    flight_samples.push_back(
        timed_ms([&] { compile_once(text, mode, machine); }));
  }
  obs::set_flight_enabled(false);
  obs::set_enabled(false);

  Row row;
  row.name = std::string(spec.file, std::string(spec.file).rfind('.'));
  row.mode = mode;
  row.base_ms = median(base_samples);
  row.obs_ms = median(obs_samples);
  row.flight_ms = median(flight_samples);
  return row;
}

/// Raw hook cost: ns per obs::record_value() with telemetry enabled.
double measure_record_ns(int iters) {
  obs::set_enabled(true);
  obs::record_value("bench.record_ns_probe", 0);  // register outside the loop
  const double ms = timed_ms([&] {
    for (int i = 0; i < iters; ++i) {
      obs::record_value("bench.record_ns_probe",
                        static_cast<std::uint64_t>(i));
    }
  });
  obs::set_enabled(false);
  return iters > 0 ? ms * 1e6 / iters : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string dir = args.get_string("examples", AIS_EXAMPLES_DIR);
  const int repeat = static_cast<int>(args.get_int("repeat", 40));
  const int record_iters =
      static_cast<int>(args.get_int("record-iters", 1000000));
  const std::string json_path = args.get_string("json", "");
  const MachineModel& machine = *machine_preset("rs6000");

  // Fresh solves only: cache hits would make compile arms incomparable.
  ScheduleCache::ScopedBypass bypass;
  obs::register_builtin_counters();

  std::printf("telemetry overhead on the example corpus "
              "(median of %d runs, machine rs6000, cache bypassed)\n\n",
              repeat);
  TextTable t({"example", "mode", "base (ms)", "metrics (ms)", "overhead",
               "flight (ms)", "flight overhead"});
  std::vector<Row> rows;
  for (const ExampleSpec& spec : kExamples) {
    rows.push_back(measure(spec, dir, machine, repeat));
    const Row& row = rows.back();
    char base_buf[32], obs_buf[32], pct_buf[32], fl_buf[32], fl_pct_buf[32];
    std::snprintf(base_buf, sizeof base_buf, "%.4f", row.base_ms);
    std::snprintf(obs_buf, sizeof obs_buf, "%.4f", row.obs_ms);
    std::snprintf(pct_buf, sizeof pct_buf, "%.1f%%", row.overhead_pct());
    std::snprintf(fl_buf, sizeof fl_buf, "%.4f", row.flight_ms);
    std::snprintf(fl_pct_buf, sizeof fl_pct_buf, "%.1f%%", row.flight_pct());
    t.add_row({row.name, row.mode, base_buf, obs_buf, pct_buf, fl_buf,
               fl_pct_buf});
  }
  // The gated number is the corpus aggregate (see header comment).
  Row total;
  total.name = "corpus total";
  for (const Row& row : rows) {
    total.base_ms += row.base_ms;
    total.obs_ms += row.obs_ms;
    total.flight_ms += row.flight_ms;
  }
  {
    char base_buf[32], obs_buf[32], pct_buf[32], fl_buf[32], fl_pct_buf[32];
    std::snprintf(base_buf, sizeof base_buf, "%.4f", total.base_ms);
    std::snprintf(obs_buf, sizeof obs_buf, "%.4f", total.obs_ms);
    std::snprintf(pct_buf, sizeof pct_buf, "%.1f%%", total.overhead_pct());
    std::snprintf(fl_buf, sizeof fl_buf, "%.4f", total.flight_ms);
    std::snprintf(fl_pct_buf, sizeof fl_pct_buf, "%.1f%%",
                  total.flight_pct());
    t.add_row({total.name, "", base_buf, obs_buf, pct_buf, fl_buf,
               fl_pct_buf});
  }
  std::printf("%s", t.to_string().c_str());

  const double record_ns = measure_record_ns(record_iters);
  std::printf("\nrecord_value: %.1f ns/record (%d iterations)\n", record_ns,
              record_iters);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "bench_obs: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\n  \"schema\": 1,\n  \"examples\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"name\": \"" << row.name << "\", \"mode\": \""
          << row.mode << "\", \"base_ms\": " << row.base_ms
          << ", \"obs_ms\": " << row.obs_ms
          << ", \"overhead_pct\": " << row.overhead_pct()
          << ", \"flight_ms\": " << row.flight_ms
          << ", \"flight_pct\": " << row.flight_pct() << "}"
          << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"total\": {\"base_ms\": " << total.base_ms
        << ", \"obs_ms\": " << total.obs_ms
        << ", \"overhead_pct\": " << total.overhead_pct()
        << ", \"flight_ms\": " << total.flight_ms
        << ", \"flight_pct\": " << total.flight_pct()
        << ", \"record_ns\": " << record_ns << "}\n}\n";
  }
  return 0;
}
