// E7: the §4.2 heuristic regimes — longer latencies, non-unit execution
// times, typed multiple functional units.
//
// Machines: rs6000-like (typed single-issue, multiply latency 4),
// deep-pipeline (1 FU, latencies up to 4, 4-cycle divides), vliw4 (4-wide).
// Workload: random traces over a realistic opcode mix; dependences carry
// producer latencies.  Also compares the whole-insertion vs unit-splitting
// backward-rank variants the paper discusses.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "workloads/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace ais;
  using benchutil::RatioMean;

  const CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 25));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 0xe7));
  const std::string csv_path = args.get_string("csv", "");

  struct MachineCase {
    const char* name;
    MachineModel machine;
  };
  const MachineCase machines[] = {
      {"rs6000-like", rs6000_like()},
      {"deep-pipeline", deep_pipeline()},
      {"vliw4", vliw4()},
  };

  std::printf("E7: general machine models (traces of 4 blocks x 10 ops, "
              "W = machine default; %d trials; geomean cycles relative to "
              "anticipatory)\n\n",
              trials);

  const char* order[] = {"anticipatory", "rank+delay", "rank", "cp-list",
                         "gibbons-muchnick", "warren", "source-order"};

  std::map<std::string, std::map<std::string, RatioMean>> ratios;
  std::map<std::string, RatioMean> split_ratio;

  for (const auto& mc : machines) {
    Prng prng(seed);
    for (int trial = 0; trial < trials; ++trial) {
      const DepGraph g =
          random_machine_trace(prng, mc.machine, 4, 10, 0.3, 2);
      const int window = mc.machine.default_window();
      const auto rows = benchutil::compare_schedulers(g, mc.machine, window);
      const double base = static_cast<double>(rows[0].cycles);
      for (const auto& row : rows) {
        ratios[row.name][mc.name].add(static_cast<double>(row.cycles) / base);
      }

      // Whole-insertion vs unit-splitting ranks (§4.2 non-unit exec).
      const RankScheduler scheduler(g, mc.machine);
      LookaheadOptions lo;
      lo.window = window;
      lo.rank.split_long_ops = true;
      const LookaheadResult split_res = schedule_trace(scheduler, lo);
      split_ratio[mc.name].add(
          static_cast<double>(simulated_completion(
              g, mc.machine, split_res.priority_list(), window)) /
          base);
    }
  }

  std::vector<std::string> headers = {"scheduler"};
  for (const auto& mc : machines) headers.push_back(mc.name);
  TextTable t(headers);
  for (const char* name : order) {
    std::vector<std::string> row = {name};
    for (const auto& mc : machines) {
      row.push_back(fmt_double(ratios[name][mc.name].geomean(), 3));
    }
    t.add_row(row);
  }
  {
    std::vector<std::string> row = {"anticipatory (unit-split ranks)"};
    for (const auto& mc : machines) {
      row.push_back(fmt_double(split_ratio[mc.name].geomean(), 3));
    }
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"scheduler", "machine", "geomean_ratio"});
    for (const char* name : order) {
      for (const auto& mc : machines) {
        csv.add_row({name, mc.name,
                     fmt_double(ratios[name][mc.name].geomean(), 5)});
      }
    }
  }
  return 0;
}
