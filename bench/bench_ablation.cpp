// E10: ablation of Algorithm Lookahead's ingredients.
//
// DESIGN.md calls out three design choices: (a) Delay_Idle_Slots (the
// paper's key idea — push idle slots late), (b) Merge's deadline caps
// (old instructions are never displaced), (c) Chop (emit settled prefixes
// to bound live-set growth).  Each switch is disabled in turn; values are
// geomean simulated cycles relative to the full algorithm (> 1 = slower,
// < 1 = the ablated variant happened to win on this workload).
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/lookahead.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "workloads/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace ais;
  using benchutil::RatioMean;

  const CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 40));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 0xe10));

  struct Variant {
    const char* name;
    bool delay_idle;
    bool merge_caps;
    bool do_chop;
  };
  const Variant variants[] = {
      {"full algorithm", true, true, true},
      {"no Delay_Idle_Slots", false, true, true},
      {"no merge deadline caps", true, false, true},
      {"no chop (re-merge all)", true, true, false},
      {"none (plain merge only)", false, false, true},
  };
  const int windows[] = {2, 4, 8};

  const MachineModel machine = scalar01();
  std::map<std::string, std::map<int, RatioMean>> ratios;

  Prng prng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    // Alternate between unstructured random traces (restricted case) and
    // boundary-structured traces (deep pipeline) — the latter is where the
    // ingredients carry the most weight.
    const bool structured = (trial % 2) == 1;
    DepGraph g;
    MachineModel trial_machine = machine;
    if (structured) {
      BoundaryTraceParams bp;
      bp.num_blocks = 5;
      bp.boundary_latency = static_cast<int>(prng.uniform(2, 4));
      g = boundary_trace(prng, bp);
      trial_machine = deep_pipeline();
    } else {
      RandomTraceParams params;
      params.num_blocks = 5;
      params.block.num_nodes = 8;
      params.block.edge_prob = 0.35;
      params.block.latency1_prob = 0.7;
      params.cross_edges = 2;
      g = random_trace(prng, params);
    }
    const RankScheduler scheduler(g, trial_machine);

    for (const int w : windows) {
      double base = 0;
      for (const Variant& v : variants) {
        LookaheadOptions opts;
        opts.window = w;
        opts.delay_idle = v.delay_idle;
        opts.merge_deadline_caps = v.merge_caps;
        opts.do_chop = v.do_chop;
        const LookaheadResult res = schedule_trace(scheduler, opts);
        const double cycles = static_cast<double>(
            simulated_completion(g, trial_machine, res.priority_list(), w));
        if (std::string(v.name) == "full algorithm") base = cycles;
        ratios[v.name][w].add(cycles / base);
      }
    }
  }

  std::printf("E10: ablation (traces of 5 blocks x 8 nodes, %d trials; "
              "geomean cycles relative to the full algorithm)\n\n",
              trials);
  std::vector<std::string> headers = {"variant"};
  for (const int w : windows) headers.push_back("W=" + std::to_string(w));
  TextTable t(headers);
  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.name};
    for (const int w : windows) {
      row.push_back(fmt_double(ratios[v.name][w].geomean(), 3));
    }
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}
