// E12 (§2.4): anticipatory scheduling as a post-pass to software pipelining.
//
// For each loop: modulo-schedule it (iterative modulo scheduling), build
// the kernel graph, then reorder the kernel with the §5.2.3 candidate
// search.  Columns: the II bounds, the achieved II, and steady-state
// cycles/iteration of (a) the unpipelined block-optimal order, (b) the
// kernel in natural (slot) order, (c) the kernel after the AIS post-pass —
// all executed on the lookahead machine at small windows, where emitted
// order matters most.
#include <cstdio>
#include <string>

#include "core/loop_single.hpp"
#include "core/rank.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "pipeline/modulo.hpp"
#include "sim/loop_sim.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace {

using namespace ais;

std::vector<NodeId> block_optimal_order(const DepGraph& g,
                                        const MachineModel& machine) {
  DepGraph li;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const NodeInfo& n = g.node(id);
    li.add_node(n.name, n.exec_time, n.fu_class, n.block);
  }
  for (const DepEdge& e : g.edges()) {
    if (e.distance == 0) li.add_edge(e.from, e.to, e.latency, 0);
  }
  const RankScheduler scheduler(li, machine);
  const NodeSet all = NodeSet::all(li.num_nodes());
  return scheduler
      .run(all, uniform_deadlines(li, huge_deadline(li, all)), {})
      .schedule.permutation();
}

void run_case(TextTable& t, const std::string& name, const DepGraph& g,
              const MachineModel& machine, int window) {
  const ModuloSchedule s = modulo_schedule(g, machine);
  if (!s.found) {
    t.add_row({name, "-", "-", "-", "-", "-", "-"});
    return;
  }
  const DepGraph k = kernel_graph(g, s);
  std::vector<NodeId> natural;
  for (NodeId id = 0; id < k.num_nodes(); ++id) natural.push_back(id);

  const double unpipelined = steady_state_period(
      g, machine, block_optimal_order(g, machine), window);
  const double kernel_natural =
      steady_state_period(k, machine, natural, window);

  LoopSingleOptions opts;
  opts.prune = LoopSingleOptions::Prune::kNever;
  const LoopCandidate best = schedule_single_block_loop(
      k, machine,
      [&](const std::vector<NodeId>& order) {
        return steady_state_period(k, machine, order, window);
      },
      opts);
  const double kernel_ais = steady_state_period(k, machine, best.order, window);

  t.add_row({name,
             std::to_string(std::max(resource_mii(g, machine),
                                     recurrence_mii(g))),
             std::to_string(s.ii), fmt_double(unpipelined, 2),
             fmt_double(kernel_natural, 2), fmt_double(kernel_ais, 2),
             fmt_double(unpipelined / kernel_ais, 3)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ais;
  const CliArgs args(argc, argv);
  const int window = static_cast<int>(args.get_int("window", 1));
  const int random_trials = static_cast<int>(args.get_int("random", 8));

  std::printf("E12 / §2.4: software pipelining + AIS post-pass "
              "(steady-state cycles/iteration at W = %d)\n\n",
              window);
  TextTable t({"loop", "MII", "II", "no SWP", "SWP kernel", "SWP + AIS",
               "total speedup"});

  run_case(t, "fig3 (hand graph)", fig3_loop(), scalar01(), window);
  const MachineModel rs = rs6000_like();
  for (const auto& [name, loop] : all_loop_kernels()) {
    run_case(t, name, build_loop_graph(loop, rs), rs, window);
  }

  Prng prng(0xe12);
  for (int trial = 0; trial < random_trials; ++trial) {
    RandomLoopParams params;
    params.block.num_nodes = static_cast<int>(prng.uniform(5, 9));
    params.block.edge_prob = 0.35;
    params.block.max_latency = 4;
    params.carried_edges = static_cast<int>(prng.uniform(1, 3));
    const DepGraph g = random_loop(prng, params);
    run_case(t, "random#" + std::to_string(trial), g, deep_pipeline(),
             window);
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}
