// Analysis-pass overhead on the shipped example corpus.
//
// The static-analysis framework (src/analysis) is designed to ride along
// with every compile — its rules reuse the compile's own dependence graph —
// so its cost must stay a small fraction of the end-to-end compile.  This
// benchmark times both halves per example:
//
//   compile  = parse + dependence graph + anticipatory schedule + verify
//   gating   = run_analysis over the exit-code-relevant rules (error and
//              warning severity: the set a compile actually gates on)
//   full     = every rule, including the two advisory notes — the
//              schedule-advisor re-runs the rank scheduler, so on
//              micro-examples it is inherently compile-sized and opt-in
//
// and reports both overhead percentages.  With --json FILE it writes a
// machine-readable report that scripts/bench_json.py folds into the
// benchmark snapshot; the *gating* overhead is asserted below
// --max-analysis-overhead (default 5%, see docs/PERFORMANCE.md).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "cfg/cfg.hpp"
#include "driver/anticipatory.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "verify/verify.hpp"

namespace {

using namespace ais;

struct ExampleSpec {
  const char* file;
  const char* mode;  // trace | loop | cfg — the example's natural shape
};

constexpr ExampleSpec kExamples[] = {
    {"fig3_loop.s", "loop"},
    {"two_block_trace.s", "trace"},
    {"memory_alias.s", "trace"},
    {"diamond_cfg.s", "cfg"},
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "bench_analysis: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

struct Row {
  std::string name;
  std::string mode;
  double compile_ms = 0;
  double gating_ms = 0;  // error/warning rules only (what a compile gates on)
  double full_ms = 0;    // every rule, advisory notes included
  double overhead_pct() const {
    return compile_ms > 0 ? 100.0 * gating_ms / compile_ms : 0.0;
  }
  double full_pct() const {
    return compile_ms > 0 ? 100.0 * full_ms / compile_ms : 0.0;
  }
};

Row measure(const ExampleSpec& spec, const std::string& dir,
            const MachineModel& machine, int repeat) {
  const std::string text = slurp(dir + "/" + spec.file);
  const std::string mode = spec.mode;

  // The gating configuration: exit-code-relevant rules only.  Notes never
  // fail a run (see docs/ANALYSIS.md), so the advisory pair is opt-in.
  analysis::AnalysisOptions gating;
  for (const analysis::RuleInfo& info : analysis::rule_registry()) {
    if (info.default_severity == verify::Severity::kNote) {
      gating.disabled.push_back(info.id);
    }
  }

  std::vector<double> compile_samples, gating_samples, full_samples;
  for (int r = 0; r < repeat; ++r) {
    // End-to-end compile, text to verified schedule, as aisc runs it.
    compile_samples.push_back(timed_ms([&] {
      const Program prog = parse_program(text);
      if (mode == "cfg") {
        const Cfg cfg(prog);
        compile_program(cfg, machine, /*window=*/0, /*verify=*/true);
      } else if (mode == "loop") {
        Loop loop;
        loop.body = Trace{prog.blocks};
        const ScheduledLoop scheduled = schedule(loop, machine, 0);
        verify_schedule(loop, scheduled, machine);
      } else {
        const Trace trace{prog.blocks};
        const ScheduledTrace scheduled = schedule(trace, machine, 0);
        verify_schedule(trace, scheduled, machine);
      }
    }));

    // The analysis pass as the compile would run it: program rules plus
    // graph rules over the compile's own graph (cfg compiles have no
    // single whole-trace graph, so they pay for program rules only).
    Program prog = parse_program(text);
    DepGraph graph;
    analysis::AnalysisInput input;
    input.program = &prog;
    input.machine = &machine;
    if (mode == "loop") {
      Loop loop;
      loop.body = Trace{prog.blocks};
      graph = build_loop_graph(loop, machine);
      input.graph = &graph;
    } else if (mode == "trace") {
      graph = build_trace_graph(Trace{prog.blocks}, machine);
      input.graph = &graph;
    }
    gating_samples.push_back(
        timed_ms([&] { analysis::run_analysis(input, gating); }));
    full_samples.push_back(
        timed_ms([&] { analysis::run_analysis(input, {}); }));
  }

  Row row;
  row.name = std::string(spec.file, std::string(spec.file).rfind('.'));
  row.mode = mode;
  row.compile_ms = median(compile_samples);
  row.gating_ms = median(gating_samples);
  row.full_ms = median(full_samples);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string dir = args.get_string("examples", AIS_EXAMPLES_DIR);
  const int repeat = static_cast<int>(args.get_int("repeat", 30));
  const std::string json_path = args.get_string("json", "");
  const MachineModel& machine = *machine_preset("rs6000");

  std::printf("analysis-pass overhead on the example corpus "
              "(median of %d runs, machine rs6000)\n\n",
              repeat);
  TextTable t({"example", "mode", "compile (ms)", "gating (ms)",
               "overhead", "full (ms)", "full overhead"});
  std::vector<Row> rows;
  for (const ExampleSpec& spec : kExamples) {
    rows.push_back(measure(spec, dir, machine, repeat));
    const Row& row = rows.back();
    char compile_buf[32], gating_buf[32], pct_buf[32], full_buf[32],
        full_pct_buf[32];
    std::snprintf(compile_buf, sizeof compile_buf, "%.4f", row.compile_ms);
    std::snprintf(gating_buf, sizeof gating_buf, "%.4f", row.gating_ms);
    std::snprintf(pct_buf, sizeof pct_buf, "%.1f%%", row.overhead_pct());
    std::snprintf(full_buf, sizeof full_buf, "%.4f", row.full_ms);
    std::snprintf(full_pct_buf, sizeof full_pct_buf, "%.1f%%",
                  row.full_pct());
    t.add_row({row.name, row.mode, compile_buf, gating_buf, pct_buf,
               full_buf, full_pct_buf});
  }
  // The gated number is the corpus aggregate: per-example ratios on
  // sub-50us compiles are dominated by fixed costs and measurement noise.
  Row total;
  total.name = "corpus total";
  for (const Row& row : rows) {
    total.compile_ms += row.compile_ms;
    total.gating_ms += row.gating_ms;
    total.full_ms += row.full_ms;
  }
  {
    char compile_buf[32], gating_buf[32], pct_buf[32], full_buf[32],
        full_pct_buf[32];
    std::snprintf(compile_buf, sizeof compile_buf, "%.4f", total.compile_ms);
    std::snprintf(gating_buf, sizeof gating_buf, "%.4f", total.gating_ms);
    std::snprintf(pct_buf, sizeof pct_buf, "%.1f%%", total.overhead_pct());
    std::snprintf(full_buf, sizeof full_buf, "%.4f", total.full_ms);
    std::snprintf(full_pct_buf, sizeof full_pct_buf, "%.1f%%",
                  total.full_pct());
    t.add_row({total.name, "", compile_buf, gating_buf, pct_buf, full_buf,
               full_pct_buf});
  }
  std::printf("%s", t.to_string().c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "bench_analysis: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << "{\n  \"schema\": 1,\n  \"examples\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"name\": \"" << row.name << "\", \"mode\": \""
          << row.mode << "\", \"compile_ms\": " << row.compile_ms
          << ", \"analysis_ms\": " << row.gating_ms
          << ", \"overhead_pct\": " << row.overhead_pct()
          << ", \"full_ms\": " << row.full_ms
          << ", \"full_pct\": " << row.full_pct() << "}"
          << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"total\": {\"compile_ms\": " << total.compile_ms
        << ", \"analysis_ms\": " << total.gating_ms
        << ", \"overhead_pct\": " << total.overhead_pct()
        << ", \"full_ms\": " << total.full_ms
        << ", \"full_pct\": " << total.full_pct() << "}\n}\n";
  }
  return 0;
}
