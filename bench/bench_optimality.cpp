// E9: how close is Algorithm Lookahead to the exhaustive optimum?
//
// For small random traces in the restricted case, enumerate every
// combination of per-block topological orders, execute each on the
// lookahead machine, and compare the true optimum against Algorithm
// Lookahead and the per-block baselines.  Reports exact-match rates and
// average gaps.  (Per DESIGN.md: Procedure Merge forbids displacing
// already-scheduled instructions, so a small fraction of instances give up
// one cycle to the unrestricted optimum.)
#include <cstdio>
#include <map>

#include "baselines/block_schedulers.hpp"
#include "baselines/bruteforce.hpp"
#include "bench_common.hpp"
#include "core/lookahead.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "workloads/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace ais;

  const CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 120));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 0xe9));

  const MachineModel machine = scalar01();

  struct Stats {
    int exact = 0;
    long long gap_sum = 0;
    long long max_gap = 0;
  };
  std::map<std::string, Stats> stats;
  int usable = 0;

  Prng prng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 2;
    params.block.num_nodes = static_cast<int>(prng.uniform(3, 6));
    params.block.edge_prob = 0.4;
    params.block.latency1_prob = 0.6;
    params.cross_edges = static_cast<int>(prng.uniform(0, 3));
    const DepGraph g = random_trace(prng, params);
    const int window = static_cast<int>(prng.uniform(2, 6));

    const Time opt = optimal_trace_completion(g, machine, window);
    if (opt < 0) continue;  // enumeration cap hit
    ++usable;

    for (const auto& row : benchutil::compare_schedulers(g, machine, window)) {
      Stats& s = stats[row.name];
      const long long gap = row.cycles - opt;
      s.exact += (gap == 0);
      s.gap_sum += gap;
      s.max_gap = std::max(s.max_gap, gap);
    }
  }

  std::printf("E9: vs the exhaustive legal-schedule optimum "
              "(%d usable instances; 2 blocks x 3-5 nodes, W in [2,5])\n\n",
              usable);
  TextTable t({"scheduler", "optimal (%)", "avg gap (cycles)", "max gap"});
  const char* order[] = {"anticipatory", "rank+delay", "rank", "cp-list",
                         "gibbons-muchnick", "warren", "source-order"};
  for (const char* name : order) {
    const Stats& s = stats[name];
    t.add_row({name, fmt_double(100.0 * s.exact / usable, 1),
               fmt_double(static_cast<double>(s.gap_sum) / usable, 3),
               std::to_string(s.max_gap)});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}
