// Corpus-scale compile gate: a million-block program streamed through the
// full pipeline (CFG -> trace selection -> anticipatory scheduling of every
// trace) in chunks, with wall-clock and peak-RSS budgets enforced from the
// command line.  CI perf-smoke pins the seed and the budgets; see
// docs/PERFORMANCE.md ("Corpus-scale gate").
//
//   bench_corpus_scale [--blocks N] [--chunk N] [--seed S] [--jobs J]
//                      [--machine NAME] [--window W] [--insts K]
//                      [--json FILE] [--max-ms MS] [--max-rss-mb MB]
//
// Peak memory stays O(chunk), never O(program): random_ir_program_chunks
// streams self-contained chunk Programs, and each is compiled and dropped
// before the next is generated.  The run is deterministic in --seed at
// every --jobs (compile_program's contract).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "cfg/cfg.hpp"
#include "core/schedule_cache.hpp"
#include "driver/function_compiler.hpp"
#include "machine/machine_model.hpp"
#include "obs/process_stats.hpp"
#include "support/cli.hpp"
#include "workloads/random_ir.hpp"

namespace {

using namespace ais;

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  RandomIrProgramParams params;
  params.num_blocks =
      static_cast<std::size_t>(args.get_int("blocks", 1'000'000));
  params.blocks_per_chunk =
      static_cast<std::size_t>(args.get_int("chunk", 4096));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  params.block.num_insts = static_cast<int>(args.get_int("insts", 8));

  const std::string machine_name = args.get_string("machine", "rs6000");
  const MachineModel* machine = machine_preset(machine_name);
  if (machine == nullptr) {
    std::fprintf(stderr, "bench_corpus_scale: unknown machine '%s'\n",
                 machine_name.c_str());
    return 2;
  }
  const int window = static_cast<int>(args.get_int("window", 0));
  const int jobs = static_cast<int>(args.get_int("jobs", 1));
  // A fresh random corpus never repeats a trace, so the schedule cache is
  // pure overhead here; leave it off unless --cache asks otherwise.
  ScheduleCache::global().set_enabled(args.get_bool("cache", false));

  std::size_t chunks = 0;
  std::size_t traces = 0;
  long long cycles_before = 0;
  long long cycles_after = 0;

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t insts =
      random_ir_program_chunks(params, [&](Program&& prog, std::size_t) {
        const Cfg cfg(prog);
        const CompiledProgram compiled =
            compile_program(cfg, *machine, window, /*verify=*/false, jobs);
        ++chunks;
        traces += compiled.traces.size();
        cycles_before += compiled.hot_trace_cycles_before;
        cycles_after += compiled.hot_trace_cycles_after;
      });
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double peak_rss_mb =
      static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0);

  std::printf(
      "corpus_scale: %zu blocks (%zu insts) in %zu chunks -> %zu traces, "
      "hot-trace cycles %lld -> %lld, %.0f ms, peak RSS %.1f MiB\n",
      params.num_blocks, insts, chunks, traces, cycles_before, cycles_after,
      wall_ms, peak_rss_mb);

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "bench_corpus_scale: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << "{\"benchmark\": \"corpus_scale\", \"blocks\": "
        << params.num_blocks << ", \"chunk\": " << params.blocks_per_chunk
        << ", \"seed\": " << params.seed << ", \"insts\": " << insts
        << ", \"chunks\": " << chunks << ", \"traces\": " << traces
        << ", \"machine\": \"" << machine_name << "\", \"jobs\": " << jobs
        << ", \"cycles_before\": " << cycles_before
        << ", \"cycles_after\": " << cycles_after << ", \"wall_ms\": "
        << wall_ms << ", \"peak_rss_mb\": " << peak_rss_mb << "}\n";
  }

  // Budget gates: nonzero exit turns a regression into a red CI run.
  int rc = 0;
  const double max_ms = args.get_double("max-ms", 0.0);
  if (max_ms > 0 && wall_ms > max_ms) {
    std::fprintf(stderr,
                 "bench_corpus_scale: wall clock %.0f ms exceeds budget "
                 "%.0f ms\n",
                 wall_ms, max_ms);
    rc = 1;
  }
  const double max_rss_mb = args.get_double("max-rss-mb", 0.0);
  if (max_rss_mb > 0 && peak_rss_mb > max_rss_mb) {
    std::fprintf(stderr,
                 "bench_corpus_scale: peak RSS %.1f MiB exceeds budget "
                 "%.1f MiB\n",
                 peak_rss_mb, max_rss_mb);
    rc = 1;
  }
  return rc;
}
