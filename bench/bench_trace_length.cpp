// E6: effect of trace length (number of basic blocks).
//
// Anticipatory gains accrue per block boundary, so longer traces should
// widen the absolute gap against local schedulers while per-boundary
// relative gain stays steady.  Restricted-case machine, W = 4.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "workloads/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace ais;
  using benchutil::RatioMean;

  const CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 30));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 0xe6));
  const std::string csv_path = args.get_string("csv", "");
  const int window = static_cast<int>(args.get_int("window", 4));

  const MachineModel machine = scalar01();
  const int lengths[] = {1, 2, 4, 8, 16, 32, 64};

  std::printf("E6: completion vs trace length m (blocks of 8 nodes, W = %d; "
              "%d trials per point; geomean cycles relative to "
              "anticipatory)\n\n",
              window, trials);

  std::map<std::string, std::map<int, RatioMean>> ratios;
  std::map<int, RatioMean> absolute;

  for (const int m : lengths) {
    Prng prng(seed + static_cast<std::uint64_t>(m));
    for (int trial = 0; trial < trials; ++trial) {
      RandomTraceParams params;
      params.num_blocks = m;
      params.block.num_nodes = 8;
      params.block.edge_prob = 0.35;
      params.block.latency1_prob = 0.6;
      params.cross_edges = 2;
      const DepGraph g = random_trace(prng, params);
      const auto rows = benchutil::compare_schedulers(g, machine, window);
      const double base = static_cast<double>(rows[0].cycles);
      absolute[m].add(base);
      for (const auto& row : rows) {
        ratios[row.name][m].add(static_cast<double>(row.cycles) / base);
      }
    }
  }

  std::vector<std::string> headers = {"scheduler"};
  for (const int m : lengths) headers.push_back("m=" + std::to_string(m));
  TextTable t(headers);
  const char* order[] = {"anticipatory", "rank+delay", "rank", "cp-list",
                         "gibbons-muchnick", "warren", "source-order"};
  for (const char* name : order) {
    std::vector<std::string> row = {name};
    for (const int m : lengths) {
      row.push_back(fmt_double(ratios[name][m].geomean(), 3));
    }
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());

  TextTable t2({"m", "anticipatory geomean cycles"});
  for (const int m : lengths) {
    t2.add_row({std::to_string(m), fmt_double(absolute[m].geomean(), 1)});
  }
  std::printf("%s", t2.to_string().c_str());

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path, {"scheduler", "blocks", "geomean_ratio"});
    for (const char* name : order) {
      for (const int m : lengths) {
        csv.add_row({name, std::to_string(m),
                     fmt_double(ratios[name][m].geomean(), 5)});
      }
    }
  }
  return 0;
}
