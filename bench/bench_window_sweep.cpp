// E5: anticipatory scheduling vs per-block baselines across window sizes.
//
// The paper's central claim (§1, §2.3): within-block reordering that
// anticipates the hardware window shortens whole-trace completion, most at
// small-to-moderate W (at W = 1 nothing can overlap; at huge W the hardware
// rediscovers the overlap on its own).  Workload: random layered-block
// traces in the provably-optimal regime (0/1 latencies, unit exec, 1 FU).
//
// Rows: per scheduler and window size, geometric-mean cycles normalized to
// anticipatory (1.000 = equal; > 1 = slower than anticipatory).
#include <cstdio>
#include <iterator>
#include <map>

#include "bench_common.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "workloads/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace ais;
  using benchutil::RatioMean;

  const CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 40));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 0xe5));
  const std::string csv_path = args.get_string("csv", "");

  const MachineModel machine = scalar01();
  const int windows[] = {1, 2, 4, 8, 16, 32};

  std::printf("E5: completion vs window size (0/1 latencies, unit exec, "
              "1 FU; %d random traces of 4 blocks x 10 nodes; values are "
              "geomean cycles relative to anticipatory)\n\n",
              trials);

  // ratios[scheduler][window]
  std::map<std::string, std::map<int, RatioMean>> ratios;
  std::map<int, RatioMean> absolute;

  Prng prng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 4;
    params.block.num_nodes = 10;
    params.block.edge_prob = 0.3;
    params.block.latency1_prob = 0.6;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    // One batched simulate_many over the whole scheduler x window grid: the
    // baselines are window-independent, so they compile once per trace, and
    // the anticipatory list is recompiled per W; every (list, W) execution
    // becomes one SimJob.
    const auto baselines = benchutil::schedule_baselines(g, machine);
    std::vector<std::vector<NodeId>> anticipatory;
    std::vector<SimJob> jobs;
    for (const int w : windows) {
      const RankScheduler scheduler(g, machine);
      LookaheadOptions opts;
      opts.window = w;
      anticipatory.push_back(schedule_trace(scheduler, opts).priority_list());
    }
    for (std::size_t wi = 0; wi < std::size(windows); ++wi) {
      jobs.push_back({&g, &machine, &anticipatory[wi], windows[wi]});
      for (const auto& b : baselines) {
        jobs.push_back({&g, &machine, &b.list, windows[wi]});
      }
    }
    const auto sims = simulate_many(jobs, 4);
    std::size_t job = 0;
    for (const int w : windows) {
      const double base = static_cast<double>(sims[job].completion);
      absolute[w].add(base);
      ratios["anticipatory"][w].add(1.0);
      ++job;
      for (const auto& b : baselines) {
        ratios[b.name][w].add(static_cast<double>(sims[job].completion) /
                              base);
        ++job;
      }
    }
  }

  std::vector<std::string> headers = {"scheduler"};
  for (const int w : windows) headers.push_back("W=" + std::to_string(w));
  TextTable t(headers);
  const char* order[] = {"anticipatory", "rank+delay", "rank", "cp-list",
                         "gibbons-muchnick", "warren", "source-order"};
  for (const char* name : order) {
    std::vector<std::string> row = {name};
    for (const int w : windows) {
      row.push_back(fmt_double(ratios[name][w].geomean(), 3));
    }
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());

  TextTable t2({"metric", "value"});
  for (const int w : windows) {
    t2.add_row({"anticipatory geomean cycles @ W=" + std::to_string(w),
                fmt_double(absolute[w].geomean(), 1)});
  }
  std::printf("%s\n", t2.to_string().c_str());

  // Second workload class: boundary-structured traces (each block ends in a
  // long-latency producer feeding the next block's critical chain) on the
  // deep-pipeline machine — the paper's motivating pattern, where the gap
  // is large at small W and the hardware window closes it as W grows.
  std::map<std::string, std::map<int, RatioMean>> bratios;
  for (const int lat : {2, 3, 4}) {
    Prng bprng(seed ^ 0xb0);
    for (int trial = 0; trial < trials; ++trial) {
      BoundaryTraceParams bp;
      bp.boundary_latency = lat;
      const DepGraph g = boundary_trace(bprng, bp);
      const MachineModel bmachine = deep_pipeline();
      const auto baselines = benchutil::schedule_baselines(g, bmachine);
      std::vector<std::vector<NodeId>> anticipatory;
      std::vector<SimJob> jobs;
      for (const int w : windows) {
        const RankScheduler scheduler(g, bmachine);
        LookaheadOptions opts;
        opts.window = w;
        anticipatory.push_back(
            schedule_trace(scheduler, opts).priority_list());
      }
      for (std::size_t wi = 0; wi < std::size(windows); ++wi) {
        jobs.push_back({&g, &bmachine, &anticipatory[wi], windows[wi]});
        for (const auto& b : baselines) {
          jobs.push_back({&g, &bmachine, &b.list, windows[wi]});
        }
      }
      const auto sims = simulate_many(jobs, 4);
      std::size_t job = 0;
      for (const int w : windows) {
        const double base = static_cast<double>(sims[job].completion);
        bratios["anticipatory"][w].add(1.0);
        ++job;
        for (const auto& b : baselines) {
          bratios[b.name][w].add(static_cast<double>(sims[job].completion) /
                                 base);
          ++job;
        }
      }
    }
  }
  std::printf("boundary-structured traces (deep-pipeline, boundary "
              "latencies 2-4; geomean cycles relative to anticipatory):\n");
  TextTable t3(headers);
  for (const char* name : order) {
    std::vector<std::string> row = {name};
    for (const int w : windows) {
      row.push_back(fmt_double(bratios[name][w].geomean(), 3));
    }
    t3.add_row(row);
  }
  std::printf("%s", t3.to_string().c_str());

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path,
                  {"workload", "scheduler", "window", "geomean_ratio"});
    for (const char* name : order) {
      for (const int w : windows) {
        csv.add_row({"random", name, std::to_string(w),
                     fmt_double(ratios[name][w].geomean(), 5)});
        csv.add_row({"boundary", name, std::to_string(w),
                     fmt_double(bratios[name][w].geomean(), 5)});
      }
    }
  }
  return 0;
}
