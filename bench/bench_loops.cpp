// E8: loop kernels — anticipatory single-block loop scheduling (§5.2.3)
// vs the block-optimal order, in steady-state cycles per iteration.
//
// Kernels: the paper's Figure 3 partial-product loop plus classic inner
// loops (daxpy, dot, FIR, horner, sum-until-zero), all compiled through the
// toy IR and dependence analyzer onto the RS/6000-like machine, plus random
// synthetic loops in the restricted regime.
#include <cmath>
#include <cstdio>
#include <string>

#include "core/loop_single.hpp"
#include "core/rank.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "sim/loop_sim.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace {

using namespace ais;

/// Block-optimal order: the Rank Algorithm over the loop-independent
/// subgraph only (what a lookahead-oblivious scheduler emits).
std::vector<NodeId> block_optimal_order(const DepGraph& g,
                                        const MachineModel& machine) {
  DepGraph li;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const NodeInfo& n = g.node(id);
    li.add_node(n.name, n.exec_time, n.fu_class, n.block);
  }
  for (const DepEdge& e : g.edges()) {
    if (e.distance == 0) li.add_edge(e.from, e.to, e.latency, 0);
  }
  const RankScheduler scheduler(li, machine);
  const NodeSet all = NodeSet::all(li.num_nodes());
  const RankResult r =
      scheduler.run(all, uniform_deadlines(li, huge_deadline(li, all)), {});
  return r.schedule.permutation();
}

void run_case(TextTable& t, const std::string& name, const DepGraph& g,
              const MachineModel& machine, int window) {
  const auto evaluator = [&](const std::vector<NodeId>& order) {
    return steady_state_period(g, machine, order, window);
  };
  LoopSingleOptions opts;
  opts.prune = LoopSingleOptions::Prune::kNever;
  const LoopCandidate best =
      schedule_single_block_loop(g, machine, evaluator, opts);
  const double anticipatory = evaluator(best.order);
  const double block = evaluator(block_optimal_order(g, machine));
  t.add_row({name, std::to_string(g.num_nodes()), std::to_string(window),
             fmt_double(anticipatory, 2), fmt_double(block, 2),
             fmt_double(block / anticipatory, 3)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ais;
  const CliArgs args(argc, argv);
  const int random_trials = static_cast<int>(args.get_int("random", 8));

  std::printf("E8: loop kernels, steady-state cycles per iteration "
              "(anticipatory = §5.2.3 general case; block = rank over the "
              "loop-independent subgraph)\n\n");

  TextTable t({"kernel", "insts", "W", "anticipatory", "block-optimal",
               "speedup"});

  // The paper's own example, on both machine renditions.
  run_case(t, "fig3 (hand graph)", fig3_loop(), scalar01(), 1);
  const MachineModel rs = rs6000_like();
  for (const auto& [name, loop] : all_loop_kernels()) {
    const DepGraph g = build_loop_graph(loop, rs);
    run_case(t, name, g, rs, 1);
  }

  std::printf("%s\n", t.to_string().c_str());

  // Random loop populations, reported in aggregate: most random loops are
  // work-bound (any topological order achieves the recurrence bound); the
  // interesting minority are fig3-like, where the §5.2.3 choice buys a
  // whole latency.  Columns: fraction of instances where anticipatory
  // strictly beats the block-optimal order, and mean speedup among those.
  struct Regime {
    const char* name;
    MachineModel machine;
    int window;
    int max_latency;
    double edge_prob;
  };
  const Regime regimes[] = {
      {"restricted (0/1 lat)", scalar01(), 2, 1, 0.3},
      {"deep pipeline (lat<=4), W=1", deep_pipeline(), 1, 4, 0.45},
      {"deep pipeline (lat<=4), W=2", deep_pipeline(), 2, 4, 0.45},
  };
  const int population = 8 * random_trials;

  TextTable agg({"regime", "loops", "anticipatory wins", "avg speedup on wins",
                 "geomean speedup"});
  for (const Regime& regime : regimes) {
    Prng prng(0xe8);
    int wins = 0;
    double gain_sum = 0;
    double log_sum = 0;
    for (int trial = 0; trial < population; ++trial) {
      RandomLoopParams params;
      params.block.num_nodes = static_cast<int>(prng.uniform(4, 7));
      params.block.edge_prob = regime.edge_prob;
      params.block.max_latency = regime.max_latency;
      params.carried_edges = static_cast<int>(prng.uniform(2, 4));
      const DepGraph g = random_loop(prng, params);
      const auto evaluator = [&](const std::vector<NodeId>& order) {
        return steady_state_period(g, regime.machine, order, regime.window);
      };
      LoopSingleOptions opts;
      opts.prune = LoopSingleOptions::Prune::kNever;
      const LoopCandidate best =
          schedule_single_block_loop(g, regime.machine, evaluator, opts);
      const double anticipatory = evaluator(best.order);
      const double block =
          evaluator(block_optimal_order(g, regime.machine));
      log_sum += std::log(block / anticipatory);
      if (anticipatory < block - 1e-9) {
        ++wins;
        gain_sum += block / anticipatory;
      }
    }
    agg.add_row({regime.name, std::to_string(population),
                 std::to_string(wins),
                 wins ? fmt_double(gain_sum / wins, 3) : std::string("-"),
                 fmt_double(std::exp(log_sum / population), 3)});
  }
  std::printf("random loop populations:\n%s", agg.to_string().c_str());
  return 0;
}
