// E14: dependence-analysis precision vs schedule quality.
//
// The scheduler can only fill idle slots with instructions the dependence
// graph proves independent.  This experiment ablates the analyzer's two
// precision levers on random IR traces:
//   * memory disambiguation by region tags (off = every load/store pair
//     with a store conflicts),
//   * register renaming (E13's pass) before analysis.
// Reported: geomean simulated cycles relative to the most precise
// configuration (tags + renaming).
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "ir/depbuild.hpp"
#include "ir/rename.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "workloads/random_ir.hpp"

int main(int argc, char** argv) {
  using namespace ais;
  using benchutil::RatioMean;

  const CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 30));

  const MachineModel machine = deep_pipeline();
  const int windows[] = {2, 4};

  struct Config {
    const char* name;
    bool tags;
    bool renaming;
  };
  const Config configs[] = {
      {"tags + renaming (baseline)", true, true},
      {"tags only", true, false},
      {"renaming only", false, true},
      {"neither", false, false},
  };

  std::printf("E14: analyzer precision ablation (random IR traces, 3 blocks "
              "x 12 insts, 40%% memory ops, deep pipeline; %d trials; "
              "geomean cycles relative to tags + renaming)\n\n",
              trials);

  std::map<std::string, std::map<int, RatioMean>> ratio;
  Prng prng(0xe14);
  for (int trial = 0; trial < trials; ++trial) {
    RandomIrParams params;
    params.num_insts = 12;
    params.num_gprs = 5;
    params.num_tags = 3;
    params.mem_frac = 0.4;
    const Trace trace = random_ir_trace(prng, params, 3);
    const Trace renamed = rename_trace(trace);

    for (const int w : windows) {
      double base = 0;
      for (const Config& cfg : configs) {
        DepBuildOptions deps;
        deps.disambiguate_memory = cfg.tags;
        const Trace& input = cfg.renaming ? renamed : trace;
        const DepGraph g = build_trace_graph(input, machine, deps);
        const RankScheduler scheduler(g, machine);
        LookaheadOptions opts;
        opts.window = w;
        const double cycles = static_cast<double>(simulated_completion(
            g, machine, schedule_trace(scheduler, opts).priority_list(), w));
        if (std::string(cfg.name).starts_with("tags + renaming")) {
          base = cycles;
        }
        ratio[cfg.name][w].add(cycles / base);
      }
    }
  }

  TextTable t({"analyzer configuration", "W=2", "W=4"});
  for (const Config& cfg : configs) {
    t.add_row({cfg.name, fmt_double(ratio[cfg.name][2].geomean(), 3),
               fmt_double(ratio[cfg.name][4].geomean(), 3)});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}
