// Differential properties for the event-driven lookahead simulator.
//
// The event-driven engine (wake-time heaps, per-class availability heaps,
// next-event time jumps with bulk stall/occupancy accounting) is required to
// be *byte identical* to the original cycle-stepping formulation on every
// output: per-node issue times, completion, the latency/window stall split,
// and the window-occupancy histogram.  That original formulation is retained
// here verbatim as an in-test oracle (the same pattern the Rank/Merge path
// uses in test_differential.cpp), and the tests below drive both engines
// over randomized machines × windows × latency regimes plus targeted cases
// for the bulk attribution of a jumped gap.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/lookahead.hpp"
#include "core/rank.hpp"
#include "core/schedule_cache.hpp"
#include "graph/depgraph.hpp"
#include "machine/machine_model.hpp"
#include "obs/obs.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/assert.hpp"
#include "support/prng.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

// ---------------------------------------------------------------------------
// Oracle: the original cycle-stepping engine, verbatim (only renamed).
// ---------------------------------------------------------------------------

SimResult oracle_simulate_list(const DepGraph& g, const MachineModel& machine,
                               const std::vector<NodeId>& list, int window) {
  AIS_CHECK(window >= 1, "window must be positive");
  const std::size_t n = list.size();

  // Position of each node in the list; also validates uniqueness.
  std::vector<std::size_t> pos(g.num_nodes(), static_cast<std::size_t>(-1));
  for (std::size_t p = 0; p < n; ++p) {
    AIS_CHECK(pos[list[p]] == static_cast<std::size_t>(-1),
              "node listed twice");
    pos[list[p]] = p;
  }
  // Compiled code lists producers before consumers; a violated order would
  // deadlock the window (head waiting on an instruction behind it).
  for (const NodeId id : list) {
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || pos[e.from] == static_cast<std::size_t>(-1)) {
        continue;
      }
      AIS_CHECK(pos[e.from] < pos[id],
                "priority list is not topological: " + g.node(e.from).name +
                    " must precede " + g.node(id).name);
    }
  }

  // Class-major unit availability.
  std::vector<int> unit_base(
      static_cast<std::size_t>(machine.num_fu_classes()), 0);
  int total_units = 0;
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    unit_base[static_cast<std::size_t>(c)] = total_units;
    total_units += machine.fu_count(c);
  }
  std::vector<Time> unit_free(static_cast<std::size_t>(total_units), 0);

  SimResult result;
  result.issue_time.assign(g.num_nodes(), Time{-1});
  result.window_occupancy.assign(
      std::min(static_cast<std::size_t>(window), n) + 1, Time{0});

  std::vector<bool> issued(n, false);
  std::size_t head = 0;  // first unissued position
  std::size_t remaining = n;

  // Ready at cycle `t`: every listed distance-0 predecessor has issued and
  // its latency has elapsed.  (The issue loop and the stall-attribution
  // scan share this definition.)
  const auto ready_at = [&](const NodeId id, const Time t) {
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || pos[e.from] == static_cast<std::size_t>(-1)) {
        continue;
      }
      const Time it = result.issue_time[e.from];
      if (it < 0 || it + g.node(e.from).exec_time + e.latency > t) {
        return false;
      }
    }
    return true;
  };
  // A free unit of `id`'s class at cycle `t`, or -1.
  const auto free_unit_at = [&](const NodeId id, const Time t) {
    const NodeInfo& info = g.node(id);
    const int base = unit_base[static_cast<std::size_t>(info.fu_class)];
    for (int k = 0; k < machine.fu_count(info.fu_class); ++k) {
      if (unit_free[static_cast<std::size_t>(base + k)] <= t) {
        return base + k;
      }
    }
    return -1;
  };

  const Time t_limit =
      g.total_work() +
      static_cast<Time>(n + 1) * (g.max_latency() + g.max_exec_time()) + 1;

  Time t = 0;
  while (remaining > 0) {
    AIS_CHECK(t <= t_limit, "simulator failed to make progress");
    {
      // Window occupancy at cycle start: unissued instructions the window
      // exposes this cycle.
      const std::size_t limit =
          std::min(n, head + static_cast<std::size_t>(window));
      std::size_t occ = 0;
      for (std::size_t p = head; p < limit; ++p) {
        if (!issued[p]) ++occ;
      }
      ++result.window_occupancy[occ];
    }
    int issued_this_cycle = 0;
    bool progressed = true;
    while (progressed && issued_this_cycle < machine.issue_width()) {
      progressed = false;
      const std::size_t limit =
          std::min(n, head + static_cast<std::size_t>(window));
      for (std::size_t p = head; p < limit; ++p) {
        if (issued[p]) continue;
        const NodeId id = list[p];
        if (!ready_at(id, t)) continue;
        const int chosen = free_unit_at(id, t);
        if (chosen < 0) continue;

        result.issue_time[id] = t;
        unit_free[static_cast<std::size_t>(chosen)] =
            t + g.node(id).exec_time;
        issued[p] = true;
        --remaining;
        ++issued_this_cycle;
        while (head < n && issued[head]) ++head;  // slide the window
        progressed = true;
        break;  // rescan from the (possibly advanced) head
      }
    }
    if (issued_this_cycle == 0 && remaining > 0) {
      ++result.stall_cycles;
      // Attribution: if some instruction past the window's reach could have
      // issued this very cycle, the head blockage is what stalled us;
      // otherwise no depth of lookahead would have helped (latency stall).
      const std::size_t limit =
          std::min(n, head + static_cast<std::size_t>(window));
      bool blocked_by_window = false;
      for (std::size_t p = limit; p < n; ++p) {
        if (issued[p]) continue;  // cannot happen (window only widens), but
                                  // keep the scan independent of that proof
        const NodeId id = list[p];
        if (ready_at(id, t) && free_unit_at(id, t) >= 0) {
          blocked_by_window = true;
          break;
        }
      }
      if (blocked_by_window) {
        ++result.window_stall_cycles;
      } else {
        ++result.latency_stall_cycles;
      }
    }
    ++t;
  }

  for (const NodeId id : list) {
    result.completion = std::max(
        result.completion, result.issue_time[id] + g.node(id).exec_time);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

void expect_byte_exact(const SimResult& engine, const SimResult& oracle,
                       const std::string& what) {
  EXPECT_EQ(engine.completion, oracle.completion) << what;
  EXPECT_EQ(engine.stall_cycles, oracle.stall_cycles) << what;
  EXPECT_EQ(engine.latency_stall_cycles, oracle.latency_stall_cycles) << what;
  EXPECT_EQ(engine.window_stall_cycles, oracle.window_stall_cycles) << what;
  EXPECT_EQ(engine.issue_time, oracle.issue_time) << what;
  EXPECT_EQ(engine.window_occupancy, oracle.window_occupancy) << what;
}

/// Randomized topological order of the distance-0 subgraph induced by
/// `nodes` (Kahn with random ready-set picks), so the differential sweep is
/// not limited to the lists the scheduler happens to produce.
std::vector<NodeId> random_topo_list(Prng& prng, const DepGraph& g,
                                     const std::vector<NodeId>& nodes) {
  std::vector<char> listed(g.num_nodes(), 0);
  for (const NodeId id : nodes) listed[id] = 1;
  std::vector<int> indegree(g.num_nodes(), 0);
  for (const NodeId id : nodes) {
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance == 0 && listed[e.from]) ++indegree[id];
    }
  }
  std::vector<NodeId> ready;
  for (const NodeId id : nodes) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(nodes.size());
  while (!ready.empty()) {
    const std::size_t k = static_cast<std::size_t>(
        prng.index(ready.size()));
    const NodeId id = ready[k];
    ready[k] = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const auto eidx : g.out_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance == 0 && listed[e.to] && --indegree[e.to] == 0) {
        ready.push_back(e.to);
      }
    }
  }
  AIS_CHECK(order.size() == nodes.size(), "induced subgraph has a cycle");
  return order;
}

std::vector<NodeId> all_nodes(const DepGraph& g) {
  std::vector<NodeId> nodes(g.num_nodes());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<NodeId>(i);
  }
  return nodes;
}

const std::vector<const char*> kMachines = {"scalar01", "rs6000-like",
                                            "deep-pipeline", "vliw4"};
const std::vector<int> kWindows = {1, 2, 3, 4, 8, 16, 64};

// ---------------------------------------------------------------------------
// Randomized differential sweep: machines × windows × latency regimes.
// ---------------------------------------------------------------------------

TEST(SimOracle, RandomBlocksAcrossMachinesWindowsLatencies) {
  Prng prng(0xd1ff5e31);
  for (const int max_latency : {1, 2, 3}) {
    for (const int n : {1, 2, 5, 13, 40, 120}) {
      RandomBlockParams params;
      params.num_nodes = n;
      params.edge_prob = n <= 5 ? 0.5 : 0.15;
      params.max_latency = max_latency;
      DepGraph g = random_block(prng, params);
      const std::vector<NodeId> list =
          random_topo_list(prng, g, all_nodes(g));
      for (const char* name : kMachines) {
        const MachineModel& machine = *machine_preset(name);
        for (const int window : kWindows) {
          expect_byte_exact(
              simulate_list(g, machine, list, window),
              oracle_simulate_list(g, machine, list, window),
              std::string(name) + " W=" + std::to_string(window) +
                  " L=" + std::to_string(max_latency) +
                  " n=" + std::to_string(n));
        }
      }
    }
  }
}

TEST(SimOracle, LayeredChainsStallHeavy) {
  // The latency-rich regime the event jumps target: chain-like layered
  // graphs where most cycles are stalls and the gaps being jumped are long.
  Prng prng(0xc4a1);
  for (const int max_latency : {1, 3}) {
    for (const int n : {24, 96}) {
      RandomBlockParams params;
      params.num_nodes = n;
      params.layers = n;  // one node per layer
      params.edge_prob = 0.9;
      params.max_latency = max_latency;
      DepGraph g = random_block(prng, params);
      const std::vector<NodeId> list =
          random_topo_list(prng, g, all_nodes(g));
      for (const char* name : kMachines) {
        for (const int window : kWindows) {
          expect_byte_exact(
              simulate_list(g, *machine_preset(name), list, window),
              oracle_simulate_list(g, *machine_preset(name), list, window),
              std::string("chain ") + name + " W=" + std::to_string(window));
        }
      }
    }
  }
}

TEST(SimOracle, MachineClassedBlocksAndSchedulerLists) {
  // Multi-FU-class workloads (loads/int/fp/stores with the machine's real
  // timings) simulated through the lists the compiler actually emits.
  Prng prng(0x5c4ed);
  for (const char* name : kMachines) {
    const MachineModel& machine = *machine_preset(name);
    for (const int n : {8, 30, 90}) {
      DepGraph g = random_machine_block(prng, machine, n, 0.25);
      const RankScheduler scheduler(g, machine);
      LookaheadOptions opts;
      opts.window = 4;
      const ScheduleCache::ScopedBypass bypass;
      const std::vector<NodeId> list =
          schedule_trace(scheduler, opts).priority_list();
      for (const int window : kWindows) {
        expect_byte_exact(
            simulate_list(g, machine, list, window),
            oracle_simulate_list(g, machine, list, window),
            std::string("classed ") + name + " W=" + std::to_string(window));
      }
    }
  }
}

TEST(SimOracle, PartialListsSkipUnlistedNodes) {
  // Lists covering only a subset of the graph: dependences through unlisted
  // nodes vanish, exactly as in the oracle's pos[] filtering.
  Prng prng(0x9a57);
  RandomBlockParams params;
  params.num_nodes = 60;
  params.edge_prob = 0.2;
  params.max_latency = 3;
  DepGraph g = random_block(prng, params);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<NodeId> subset;
    for (NodeId id = 0; id < static_cast<NodeId>(g.num_nodes()); ++id) {
      if (prng.index(3) != 0) subset.push_back(id);
    }
    const std::vector<NodeId> list = random_topo_list(prng, g, subset);
    for (const int window : {1, 4, 16}) {
      expect_byte_exact(
          simulate_list(g, *machine_preset("rs6000-like"), list, window),
          oracle_simulate_list(g, *machine_preset("rs6000-like"), list,
                               window),
          "subset W=" + std::to_string(window));
    }
  }
}

TEST(SimOracle, EmptyAndSingletonLists) {
  DepGraph g;
  g.add_node("a", 2, 0);
  const MachineModel& machine = *machine_preset("scalar01");
  const std::vector<NodeId> empty;
  expect_byte_exact(simulate_list(g, machine, empty, 4),
                    oracle_simulate_list(g, machine, empty, 4), "empty");
  const std::vector<NodeId> one = {0};
  expect_byte_exact(simulate_list(g, machine, one, 1),
                    oracle_simulate_list(g, machine, one, 1), "singleton");
}

// ---------------------------------------------------------------------------
// Targeted: bulk attribution across a jumped gap.
// ---------------------------------------------------------------------------

TEST(SimOracle, BulkWindowAttributionAcrossJump) {
  // a --(latency 10)--> b, with c independent and beyond the W=1 window.
  // After a issues at cycle 0 the engine jumps straight to cycle 11; every
  // jumped cycle must be attributed to the window (c was ready with a free
  // unit the whole time, only the head blockage hid it).
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  g.add_edge(a, b, /*latency=*/10);
  const std::vector<NodeId> list = {a, b, c};
  const MachineModel& machine = *machine_preset("scalar01");

  const SimResult r = simulate_list(g, machine, list, /*window=*/1);
  expect_byte_exact(r, oracle_simulate_list(g, machine, list, 1), "jump");
  EXPECT_EQ(r.stall_cycles, 10);
  EXPECT_EQ(r.window_stall_cycles, 10);
  EXPECT_EQ(r.latency_stall_cycles, 0);
  EXPECT_EQ(r.issue_time[b], 11);
  EXPECT_EQ(r.issue_time[c], 12);
}

TEST(SimOracle, GapSplitsAtBeyondWindowReadyTime) {
  // As above, but c itself depends on a with latency 5: the jumped gap
  // (cycles 1..10) must split at c's arrival — cycles 1..5 are latency
  // stalls (nothing anywhere could issue), cycles 6..10 window stalls.
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  g.add_edge(a, b, /*latency=*/10);
  g.add_edge(a, c, /*latency=*/5);
  const std::vector<NodeId> list = {a, b, c};
  const MachineModel& machine = *machine_preset("scalar01");

  const SimResult r = simulate_list(g, machine, list, /*window=*/1);
  expect_byte_exact(r, oracle_simulate_list(g, machine, list, 1), "split");
  EXPECT_EQ(r.stall_cycles, 10);
  EXPECT_EQ(r.latency_stall_cycles, 5);
  EXPECT_EQ(r.window_stall_cycles, 5);
}

TEST(SimOracle, OccupancyAccumulatesInBulkAcrossJump) {
  // A chain with a large latency: the whole gap sits at occupancy W (all
  // exposed instructions blocked), accumulated by one bulk update.
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  g.add_edge(a, b, /*latency=*/7);
  g.add_edge(b, c, /*latency=*/7);
  const std::vector<NodeId> list = {a, b, c};
  const MachineModel& machine = *machine_preset("scalar01");

  const SimResult r = simulate_list(g, machine, list, /*window=*/2);
  expect_byte_exact(r, oracle_simulate_list(g, machine, list, 2), "occ");
  Time cycles = 0;
  for (const Time v : r.window_occupancy) cycles += v;
  // Histogram totals the executed cycles: last issue at 16, so 17 cycles.
  EXPECT_EQ(cycles, 17);
  // First wait (cycles 0..8) exposes {b, c}; second (9..16) just {c}.
  EXPECT_EQ(r.window_occupancy[2], 9);
  EXPECT_EQ(r.window_occupancy[1], 8);
  EXPECT_EQ(r.latency_stall_cycles, 14);
  EXPECT_EQ(r.window_stall_cycles, 0);
}

// ---------------------------------------------------------------------------
// Scratch reuse and the batched survey API.
// ---------------------------------------------------------------------------

TEST(SimOracle, ScratchReuseAcrossMixedShapes) {
  Prng prng(0x5c4a7c4);
  SimScratch scratch;
  for (int trial = 0; trial < 12; ++trial) {
    RandomBlockParams params;
    params.num_nodes = trial % 2 == 0 ? 80 : 7;  // alternate big / small
    params.edge_prob = 0.3;
    params.max_latency = 3;
    DepGraph g = random_block(prng, params);
    const std::vector<NodeId> list = random_topo_list(prng, g, all_nodes(g));
    const char* name = kMachines[static_cast<std::size_t>(trial) %
                                 kMachines.size()];
    const int window = kWindows[static_cast<std::size_t>(trial) %
                                kWindows.size()];
    expect_byte_exact(
        simulate_list(g, *machine_preset(name), list, window, scratch),
        oracle_simulate_list(g, *machine_preset(name), list, window),
        "scratch trial " + std::to_string(trial));
  }
}

TEST(SimOracle, SimulateManyMatchesPerCallResults) {
  Prng prng(0xba7c4);
  std::vector<DepGraph> graphs;
  std::vector<std::vector<NodeId>> lists;
  graphs.reserve(24);
  for (int i = 0; i < 24; ++i) {
    RandomBlockParams params;
    params.num_nodes = 5 + i * 7;
    params.edge_prob = 0.25;
    params.max_latency = 1 + i % 3;
    graphs.push_back(random_block(prng, params));
  }
  lists.reserve(graphs.size());
  for (const DepGraph& g : graphs) {
    lists.push_back(random_topo_list(prng, g, all_nodes(g)));
  }
  std::vector<SimJob> jobs;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const char* name = kMachines[i % kMachines.size()];
    jobs.push_back({&graphs[i], machine_preset(name), &lists[i],
                    kWindows[i % kWindows.size()]});
  }
  const std::vector<SimResult> serial = simulate_many(jobs, /*threads=*/1);
  const std::vector<SimResult> parallel = simulate_many(jobs, /*threads=*/8);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SimResult one = simulate_list(*jobs[i].graph, *jobs[i].machine,
                                        *jobs[i].list, jobs[i].window);
    expect_byte_exact(serial[i], one, "serial job " + std::to_string(i));
    expect_byte_exact(parallel[i], one, "parallel job " + std::to_string(i));
  }
}

TEST(SimOracle, EventCountersDecomposeSimulatedCycles) {
  if (!obs::kHooksCompiledIn) GTEST_SKIP() << "obs hooks compiled out";
  obs::set_enabled(false);
  obs::reset();
  obs::set_enabled(true);
  Prng prng(0xe7c7);
  RandomBlockParams params;
  params.num_nodes = 60;
  params.layers = 60;
  params.edge_prob = 0.9;
  params.max_latency = 3;
  DepGraph g = random_block(prng, params);
  const std::vector<NodeId> list = random_topo_list(prng, g, all_nodes(g));

  const auto value = [](const char* key) {
    for (const auto& kv : obs::counters_snapshot()) {
      if (kv.first == key) return kv.second;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t cycles0 = value(obs::ctr::kSimCycles);
  const std::uint64_t events0 = value(obs::ctr::kSimEvents);
  const std::uint64_t jumped0 = value(obs::ctr::kSimCyclesJumped);
  const SimResult r = simulate_list(g, *machine_preset("scalar01"), list, 4);
  const std::uint64_t cycles = value(obs::ctr::kSimCycles) - cycles0;
  const std::uint64_t events = value(obs::ctr::kSimEvents) - events0;
  const std::uint64_t jumped = value(obs::ctr::kSimCyclesJumped) - jumped0;
  EXPECT_EQ(cycles, static_cast<std::uint64_t>(r.completion));
  EXPECT_EQ(events + jumped, cycles);
  EXPECT_LE(events, cycles);
  // The stall-heavy chain must actually exercise the jump path.
  EXPECT_GT(jumped, 0u);
  obs::set_enabled(false);
}

}  // namespace
}  // namespace ais
