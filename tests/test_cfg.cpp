// Tests for the CFG substrate, trace selection, and the whole-program
// compiler driver.
#include <gtest/gtest.h>

#include "cfg/cfg.hpp"
#include "cfg/trace_select.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "ir/interp.hpp"
#include "machine/machine_model.hpp"

namespace ais {
namespace {

/// Diamond with a loop-back: entry -> (then|else) -> join -> exit-or-back.
Program diamond_program() {
  return parse_program(R"(
    block entry:
      LDU r6, a[r7+4]
      CMP c1, r6, 0
      BT  c1, else_side
    block then_side:
      ADD r1, r6, r6
      MUL r2, r1, r6
      B   join
    block else_side:
      SUB r1, r6, r6
      SHL r2, r1, 1
    block join:
      ADD r3, r2, r1
      ST  out[r9+0], r3
      CMP c2, r3, 0
      BF  c2, entry
    block exit:
      MOV r4, r3
  )");
}

TEST(Cfg, EdgesFromBranchesAndFallthrough) {
  const Cfg cfg(diamond_program());
  ASSERT_EQ(cfg.num_blocks(), 5u);
  const BlockId entry = cfg.find_label("entry");
  const BlockId then_side = cfg.find_label("then_side");
  const BlockId else_side = cfg.find_label("else_side");
  const BlockId join = cfg.find_label("join");
  const BlockId exit = cfg.find_label("exit");
  ASSERT_NE(join, kNoBlock);

  // entry: conditional -> {else (taken), then (fallthrough)}.
  const auto entry_out = cfg.out_edges(entry);
  ASSERT_EQ(entry_out.size(), 2u);
  // then: unconditional B join only.
  const auto then_out = cfg.out_edges(then_side);
  ASSERT_EQ(then_out.size(), 1u);
  EXPECT_EQ(then_out[0].to, join);
  // else: pure fallthrough to join.
  const auto else_out = cfg.out_edges(else_side);
  ASSERT_EQ(else_out.size(), 1u);
  EXPECT_EQ(else_out[0].to, join);
  // join: conditional BF entry (back edge) + fallthrough exit.
  const auto join_out = cfg.out_edges(join);
  ASSERT_EQ(join_out.size(), 2u);
  EXPECT_EQ(cfg.out_edges(exit).size(), 0u);
}

TEST(Cfg, DefaultProbabilitiesSplitEvenly) {
  const Cfg cfg(diamond_program(), /*entry_weight=*/100);
  const BlockId entry = cfg.find_label("entry");
  for (const CfgEdge& e : cfg.out_edges(entry)) {
    EXPECT_DOUBLE_EQ(e.weight, 50.0);
  }
  // join receives both sides: 50 + 50.
  EXPECT_DOUBLE_EQ(cfg.block_weight(cfg.find_label("join")), 100.0);
}

TEST(Cfg, ProfileChangesWeights) {
  Cfg cfg(diamond_program(), 100);
  const BlockId entry = cfg.find_label("entry");
  cfg.set_branch_probability(entry, 0.9);  // branch to else 90% of the time
  EXPECT_DOUBLE_EQ(cfg.block_weight(cfg.find_label("else_side")), 90.0);
  EXPECT_DOUBLE_EQ(cfg.block_weight(cfg.find_label("then_side")), 10.0);
}

TEST(Cfg, UnknownLabelYieldsNoEdge) {
  const Program prog = parse_program(R"(
    block a:
      CMP c1, r1, 0
      BT  c1, nowhere
    block b:
      NOP
  )");
  const Cfg cfg(prog);
  // Only the fall-through edge exists.
  ASSERT_EQ(cfg.out_edges(0).size(), 1u);
  EXPECT_FALSE(cfg.out_edges(0)[0].taken);
}

TEST(TraceSelect, FollowsTheHotPath) {
  Cfg cfg(diamond_program(), 100);
  cfg.set_branch_probability(cfg.find_label("entry"), 0.1);  // then is hot
  const auto traces = select_traces(cfg);
  ASSERT_FALSE(traces.empty());
  // Hottest trace: entry -> then -> join (+ possibly exit).
  const auto& hot = traces[0];
  ASSERT_GE(hot.blocks.size(), 3u);
  EXPECT_EQ(hot.blocks[0], cfg.find_label("entry"));
  EXPECT_EQ(hot.blocks[1], cfg.find_label("then_side"));
  EXPECT_EQ(hot.blocks[2], cfg.find_label("join"));
}

TEST(TraceSelect, EveryBlockInExactlyOneTrace) {
  Cfg cfg(diamond_program(), 100);
  const auto traces = select_traces(cfg);
  std::vector<int> seen(cfg.num_blocks(), 0);
  for (const auto& t : traces) {
    for (const BlockId b : t.blocks) ++seen[static_cast<std::size_t>(b)];
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(TraceSelect, MutualMostLikelyStopsAtMergePoints) {
  // If the else side is hot, the trace through else must not also claim
  // then_side (join's best predecessor is else).
  Cfg cfg(diamond_program(), 100);
  cfg.set_branch_probability(cfg.find_label("entry"), 0.95);
  const auto traces = select_traces(cfg);
  const auto& hot = traces[0];
  for (const BlockId b : hot.blocks) {
    EXPECT_NE(b, cfg.find_label("then_side"));
  }
}

TEST(FunctionCompiler, PreservesLayoutLabelsAndSemantics) {
  const Program prog = diamond_program();
  Cfg cfg(prog, 100);
  cfg.set_branch_probability(cfg.find_label("entry"), 0.2);
  const MachineModel machine = rs6000_like();
  const CompiledProgram compiled = compile_program(cfg, machine, 4);

  ASSERT_EQ(compiled.program.blocks.size(), prog.blocks.size());
  for (std::size_t b = 0; b < prog.blocks.size(); ++b) {
    EXPECT_EQ(compiled.program.blocks[b].label, prog.blocks[b].label);
    EXPECT_EQ(compiled.program.blocks[b].insts.size(),
              prog.blocks[b].insts.size());
    // Per-block semantics: identical final state from identical input.
    const InterpState init = InterpState::random(b + 1);
    EXPECT_TRUE(run_block(compiled.program.blocks[b], init) ==
                run_block(prog.blocks[b], init))
        << prog.blocks[b].label;
  }
  EXPECT_LE(compiled.hot_trace_cycles_after, compiled.hot_trace_cycles_before);
}

TEST(FunctionCompiler, HotTraceDiagnosticsPopulated) {
  Cfg cfg(diamond_program(), 100);
  const CompiledProgram compiled = compile_program(cfg, deep_pipeline());
  EXPECT_GT(compiled.hot_trace_cycles_before, 0);
  EXPECT_GT(compiled.hot_trace_cycles_after, 0);
  EXPECT_GT(compiled.window, 0);
  EXPECT_FALSE(compiled.traces.empty());
}

/// Program with `segments` independent single-block loop bodies — one trace
/// each once the back edges are hot — so compile_program's --jobs pool has
/// real fan-out to distribute.
Program looped_segments_program(int segments) {
  std::string text;
  for (int k = 0; k < segments; ++k) {
    const std::string s = std::to_string(k);
    text += "block body" + s + ":\n";
    text += "  LDU r1, a[r9+" + std::to_string(8 * k) + "]\n";
    text += "  MUL r2, r1, r1\n  ADD r3, r2, r1\n  SUB r4, r3, r1\n";
    text += "  CMP c1, r4, 0\n  BT  c1, body" + s + "\n";
  }
  return parse_program(text);
}

TEST(FunctionCompiler, JobsCountDoesNotChangeOutput) {
  const int segments = 6;
  const Program prog = looped_segments_program(segments);
  Cfg cfg(prog);
  for (int k = 0; k < segments; ++k) {
    cfg.set_branch_probability(cfg.find_label("body" + std::to_string(k)),
                               0.9);
  }
  const MachineModel machine = deep_pipeline();

  const CompiledProgram serial =
      compile_program(cfg, machine, /*window=*/4, /*verify=*/true, /*jobs=*/1);
  ASSERT_GE(serial.traces.size(), static_cast<std::size_t>(segments));

  for (const int jobs : {2, 4, 0 /* = hardware threads */}) {
    const CompiledProgram parallel =
        compile_program(cfg, machine, /*window=*/4, /*verify=*/true, jobs);

    // Identical emitted code, instruction for instruction.
    ASSERT_EQ(parallel.program.blocks.size(), serial.program.blocks.size());
    for (std::size_t b = 0; b < serial.program.blocks.size(); ++b) {
      const auto& sb = serial.program.blocks[b];
      const auto& pb = parallel.program.blocks[b];
      EXPECT_EQ(pb.label, sb.label);
      ASSERT_EQ(pb.insts.size(), sb.insts.size());
      for (std::size_t i = 0; i < sb.insts.size(); ++i) {
        EXPECT_EQ(pb.insts[i].to_string(), sb.insts[i].to_string())
            << "jobs=" << jobs << " block " << sb.label << " inst " << i;
      }
    }

    // Identical diagnostics and verification findings.
    EXPECT_EQ(parallel.hot_trace_cycles_before, serial.hot_trace_cycles_before);
    EXPECT_EQ(parallel.hot_trace_cycles_after, serial.hot_trace_cycles_after);
    EXPECT_EQ(parallel.traces.size(), serial.traces.size());
    EXPECT_EQ(parallel.verification.to_string(),
              serial.verification.to_string());
    EXPECT_TRUE(parallel.verification.ok());
  }
}

}  // namespace
}  // namespace ais
