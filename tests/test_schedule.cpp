// Unit tests for the Schedule type: placement, idle slots, u sets,
// permutations, validation, rendering.
#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "machine/machine_model.hpp"
#include "workloads/paper_graphs.hpp"

namespace ais {
namespace {

/// x e . w b r a  on a single unit (the Figure 1 rank schedule shape).
Schedule fig1_like(const DepGraph& g) {
  Schedule s(&g, NodeSet::all(g.num_nodes()), 1);
  s.place(g.find("e"), 0, 0);
  s.place(g.find("x"), 1, 0);
  s.place(g.find("w"), 3, 0);
  s.place(g.find("b"), 4, 0);
  s.place(g.find("r"), 5, 0);
  s.place(g.find("a"), 6, 0);
  return s;
}

TEST(Schedule, PlacementAndQueries) {
  const DepGraph g = fig1_bb1();
  const Schedule s = fig1_like(g);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.makespan(), 7);
  EXPECT_EQ(s.start(g.find("x")), 1);
  EXPECT_EQ(s.completion(g.find("x")), 2);
  EXPECT_EQ(s.unit_of(g.find("x")), 0);
  EXPECT_EQ(s.node_at(0, 1), g.find("x"));
  EXPECT_EQ(s.node_at(0, 2), kInvalidNode);
}

TEST(Schedule, IdleSlotsAndTail) {
  const DepGraph g = fig1_bb1();
  const Schedule s = fig1_like(g);
  const auto slots = s.idle_slots();
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0], (IdleSlot{0, 2}));
  EXPECT_EQ(s.idle_times(0), (std::vector<Time>{2}));
  // Tail node of the idle slot at t=2 completes at 2: that's x.
  EXPECT_EQ(s.tail_node(0, 2), g.find("x"));
  EXPECT_EQ(s.tail_node(0, 3), kInvalidNode);
}

TEST(Schedule, IdleSlotsMemoInvalidatedByPlace) {
  const DepGraph g = fig1_bb1();
  Schedule s(&g, NodeSet::all(g.num_nodes()), 1);
  s.place(g.find("e"), 0, 0);
  s.place(g.find("x"), 1, 0);
  s.place(g.find("w"), 3, 0);
  // The memoized list must be stable across repeated reads...
  const auto& first = s.idle_slots();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], (IdleSlot{0, 2}));
  EXPECT_EQ(&s.idle_slots(), &first);  // same cached vector
  // ...and recomputed after a placement changes the schedule.
  s.place(g.find("b"), 5, 0);
  const auto& second = s.idle_slots();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0], (IdleSlot{0, 2}));
  EXPECT_EQ(second[1], (IdleSlot{0, 4}));
}

TEST(Schedule, IdleSlotIndexFindsEverySlot) {
  const DepGraph g = fig1_bb1();
  Schedule s(&g, NodeSet::all(g.num_nodes()), 1);
  s.place(g.find("e"), 0, 0);
  s.place(g.find("x"), 2, 0);
  s.place(g.find("w"), 5, 0);
  const auto& slots = s.idle_slots();
  ASSERT_EQ(slots.size(), 3u);  // t = 1, 3, 4
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(s.idle_slot_index(slots[i]), i);
  }
}

TEST(Schedule, USets) {
  const DepGraph g = fig1_bb1();
  const Schedule s = fig1_like(g);
  const auto sets = s.u_sets();
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<NodeId>{g.find("e"), g.find("x")}));
  EXPECT_EQ(sets[1].size(), 4u);
}

TEST(Schedule, PermutationOrdersByStart) {
  const DepGraph g = fig1_bb1();
  const Schedule s = fig1_like(g);
  const auto perm = s.permutation();
  EXPECT_EQ(perm.front(), g.find("e"));
  EXPECT_EQ(perm.back(), g.find("a"));
  EXPECT_EQ(perm.size(), 6u);
}

TEST(Schedule, RejectsOverlaps) {
  const DepGraph g = fig1_bb1();
  Schedule s(&g, NodeSet::all(g.num_nodes()), 1);
  s.place(0, 0, 0);
  EXPECT_DEATH(s.place(1, 0, 0), "busy");
}

TEST(Schedule, RejectsDoublePlacement) {
  const DepGraph g = fig1_bb1();
  Schedule s(&g, NodeSet::all(g.num_nodes()), 1);
  s.place(0, 0, 0);
  EXPECT_DEATH(s.place(0, 3, 0), "already placed");
}

TEST(Schedule, MultiUnitExecTimes) {
  DepGraph g;
  const NodeId a = g.add_node("a", 2, 0);
  const NodeId b = g.add_node("b", 1, 0);
  Schedule s(&g, NodeSet::all(2), 2);
  s.place(a, 0, 0);
  s.place(b, 1, 1);
  EXPECT_EQ(s.makespan(), 2);
  EXPECT_EQ(s.node_at(0, 1), a);  // still running its 2nd cycle
  // Unit 1 idle at t=0, unit 0 never idle.
  EXPECT_EQ(s.idle_times(1), (std::vector<Time>{0}));
  EXPECT_TRUE(s.idle_times(0).empty());
}

TEST(ValidateSchedule, AcceptsLegalRejectsViolation) {
  const DepGraph g = fig1_bb1();
  const MachineModel m = scalar01();
  const Schedule good = fig1_like(g);
  EXPECT_EQ(validate_schedule(good, m), "");

  Schedule bad(&g, NodeSet::all(g.num_nodes()), 1);
  // w at t=1 violates x->w latency 1 (x completes at 1, w needs start >= 2).
  bad.place(g.find("x"), 0, 0);
  bad.place(g.find("w"), 1, 0);
  bad.place(g.find("e"), 2, 0);
  bad.place(g.find("b"), 4, 0);
  bad.place(g.find("r"), 5, 0);
  bad.place(g.find("a"), 6, 0);
  EXPECT_NE(validate_schedule(bad, m), "");
}

TEST(ValidateSchedule, RejectsIncomplete) {
  const DepGraph g = fig1_bb1();
  Schedule s(&g, NodeSet::all(g.num_nodes()), 1);
  s.place(0, 0, 0);
  EXPECT_NE(validate_schedule(s, scalar01()), "");
}

TEST(FormatTimeline, RendersPaperStyle) {
  const DepGraph g = fig1_bb1();
  EXPECT_EQ(format_timeline(fig1_like(g)), "| e | x | . | w | b | r | a |");
}

}  // namespace
}  // namespace ais
