// Tests for the baseline schedulers and the brute-force oracles.
#include <gtest/gtest.h>

#include "baselines/block_schedulers.hpp"
#include "baselines/bruteforce.hpp"
#include "core/lookahead.hpp"
#include "core/rank.hpp"
#include "graph/critpath.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

TEST(Baselines, AllProduceTopologicalBlockOrders) {
  Prng prng(0xba5e);
  const BlockScheduler kinds[] = {
      BlockScheduler::kSourceOrder,    BlockScheduler::kCriticalPathList,
      BlockScheduler::kGibbonsMuchnick, BlockScheduler::kWarren,
      BlockScheduler::kRank,           BlockScheduler::kRankDelayed};
  for (int trial = 0; trial < 8; ++trial) {
    RandomBlockParams params;
    params.num_nodes = static_cast<int>(prng.uniform(4, 12));
    params.edge_prob = 0.35;
    const DepGraph g = random_block(prng, params);
    const NodeSet all = NodeSet::all(g.num_nodes());
    for (const BlockScheduler kind : kinds) {
      const auto order = schedule_block(g, scalar01(), all, kind);
      ASSERT_EQ(order.size(), g.num_nodes()) << block_scheduler_name(kind);
      std::vector<std::size_t> pos(g.num_nodes());
      for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
      for (const DepEdge& e : g.edges()) {
        EXPECT_LT(pos[e.from], pos[e.to]) << block_scheduler_name(kind);
      }
    }
  }
}

TEST(Baselines, NamesAreDistinct) {
  std::set<std::string> names;
  for (const auto kind :
       {BlockScheduler::kSourceOrder, BlockScheduler::kCriticalPathList,
        BlockScheduler::kGibbonsMuchnick, BlockScheduler::kWarren,
        BlockScheduler::kRank, BlockScheduler::kRankDelayed}) {
    names.insert(block_scheduler_name(kind));
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(Baselines, RankDelayedMovesIdleLate) {
  const DepGraph g = fig1_bb1();
  const NodeSet all = NodeSet::all(g.num_nodes());
  const auto delayed =
      schedule_block(g, scalar01(), all, BlockScheduler::kRankDelayed);
  // After delaying, a is the last instruction and the pre-idle prefix is
  // maximal: simulated alone the order still takes 7 cycles but leaves its
  // only stall right before a.
  EXPECT_EQ(g.node(delayed.back()).name, "a");
  const SimResult r = simulate_list(g, scalar01(), delayed, 1);
  EXPECT_EQ(r.completion, 7);
}

TEST(Baselines, PerBlockTraceCoversAllBlocks) {
  const DepGraph g = fig2_trace();
  const auto list =
      schedule_trace_per_block(g, scalar01(), BlockScheduler::kCriticalPathList);
  ASSERT_EQ(list.size(), g.num_nodes());
  // Block 0 nodes first, then block 1.
  for (std::size_t i = 1; i < list.size(); ++i) {
    EXPECT_LE(g.node(list[i - 1]).block, g.node(list[i]).block);
  }
}

TEST(BruteForce, MatchesHandComputedOptimum) {
  const DepGraph g = fig1_bb1();
  EXPECT_EQ(optimal_block_makespan(g, NodeSet::all(g.num_nodes())), 7);
}

TEST(BruteForce, ChainWithLatencies) {
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  g.add_edge(a, b, 2);
  g.add_edge(b, c, 2);
  EXPECT_EQ(optimal_block_makespan(g, NodeSet::all(3)), 7);  // 1+2+1+2+1
}

TEST(BruteForce, IndependentNodesAreWorkBound) {
  DepGraph g;
  for (int i = 0; i < 6; ++i) g.add_node("n" + std::to_string(i));
  EXPECT_EQ(optimal_block_makespan(g, NodeSet::all(6)), 6);
}

TEST(BruteForce, DeliberateIdlingCanBeOptimal) {
  // a -> c (lat 2), b independent.  Greedy "a b c" gives 4; so does
  // "b a c"... make idling matter: a -> c lat 1, a -> d lat 1, b long chain?
  // Simplest: chain a->b lat 3 with one filler: optimal must interleave.
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_node("f");  // independent filler
  g.add_edge(a, b, 3);
  EXPECT_EQ(optimal_block_makespan(g, NodeSet::all(3)), 5);  // a f . . b
}

TEST(BruteForce, NonUnitExecTimes) {
  DepGraph g;
  const NodeId big = g.add_node("big", 3);
  const NodeId dep = g.add_node("dep", 1);
  g.add_node("free", 1);
  g.add_edge(big, dep, 0);
  EXPECT_EQ(optimal_block_makespan(g, NodeSet::all(3)), 5);
}

TEST(BruteForce, TraceOptimumAtLeastBlockLowerBound) {
  Prng prng(0x0907);
  for (int trial = 0; trial < 6; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 2;
    params.block.num_nodes = 5;
    params.block.edge_prob = 0.4;
    params.cross_edges = 1;
    const DepGraph g = random_trace(prng, params);
    const Time opt = optimal_trace_completion(g, scalar01(), 3);
    ASSERT_GE(opt, 0);
    EXPECT_GE(opt, static_cast<Time>(g.num_nodes()));
    EXPECT_GE(opt, critical_path(g, NodeSet::all(g.num_nodes())));
  }
}

TEST(BruteForce, CapReturnsMinusOne) {
  Prng prng(0xca9);
  RandomTraceParams params;
  params.num_blocks = 2;
  params.block.num_nodes = 9;
  params.block.edge_prob = 0.05;  // almost no edges: ~9! orders per block
  params.cross_edges = 0;
  const DepGraph g = random_trace(prng, params);
  EXPECT_EQ(optimal_trace_completion(g, scalar01(), 2, /*cap=*/1000), -1);
}

TEST(BruteForce, LoopOptimumMatchesFig8) {
  const DepGraph g = fig8_loop();
  const double best = optimal_loop_period(g, scalar01(), 1);
  EXPECT_DOUBLE_EQ(best, 4.0);
}

// The headline claim (§4.1): Algorithm Lookahead's emitted code, executed
// on the lookahead machine, against the exhaustive optimum over all
// per-block orders — restricted case.
//
// Note the scope: the exhaustive optimum ranges over *all* legal schedules,
// including those that displace an already-scheduled block's instruction
// past its standalone makespan; Procedure Merge deliberately forbids
// displacement (Fig. 7 caps old deadlines at T_old), so on rare instances
// the procedure gives up one cycle to the unrestricted optimum.  We assert
// a never-worse-than-opt+1 bound and a high exact-match rate; bench_e09
// reports the measured rates.
class LookaheadOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LookaheadOptimality, TracksExhaustiveTraceOptimum) {
  Prng prng(GetParam());
  const MachineModel machine = scalar01();
  int exact = 0;
  const int trials = 6;
  for (int trial = 0; trial < trials; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 2;
    params.block.num_nodes = static_cast<int>(prng.uniform(3, 6));
    params.block.edge_prob = 0.4;
    params.cross_edges = static_cast<int>(prng.uniform(0, 3));
    const DepGraph g = random_trace(prng, params);
    const int window = static_cast<int>(prng.uniform(2, 5));

    const Time opt = optimal_trace_completion(g, machine, window);
    ASSERT_GE(opt, 0);

    const RankScheduler scheduler(g, machine);
    LookaheadOptions opts;
    opts.window = window;
    const LookaheadResult res = schedule_trace(scheduler, opts);
    const Time got =
        simulated_completion(g, machine, res.priority_list(), window);
    EXPECT_GE(got, opt);
    EXPECT_LE(got, opt + 1) << "seed=" << GetParam() << " trial=" << trial
                            << " W=" << window;
    exact += (got == opt);
  }
  EXPECT_GE(exact, trials - 2) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookaheadOptimality,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ais
