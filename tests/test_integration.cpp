// End-to-end integration: assembly text -> IR -> dependence graph ->
// Algorithm Lookahead -> legality -> lookahead-machine execution, plus
// cross-module property sweeps.
#include <gtest/gtest.h>

#include "baselines/block_schedulers.hpp"
#include "core/legality.hpp"
#include "core/lookahead.hpp"
#include "core/loop_single.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "sim/loop_sim.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

TEST(Integration, AsmTraceThroughFullPipeline) {
  const Program prog = parse_program(R"(
    block head:
      LDU r6, a[r7+4]
      LDU r8, b[r9+4]
      MUL r10, r6, r8
      CMP c1, r10, 0
      BT  c1, out
    block body:
      ADD r11, r10, r6
      SHL r12, r11, 1
      LD  r13, c[r12+0]
      ADD r14, r13, r11
      ST  d[r7+0], r14
  )");
  const MachineModel machine = rs6000_like();
  const DepGraph g = build_trace_graph(Trace{prog.blocks}, machine);
  const RankScheduler scheduler(g, machine);

  for (const int window : {1, 2, 4, 8}) {
    LookaheadOptions opts;
    opts.window = window;
    const LookaheadResult res = schedule_trace(scheduler, opts);
    ASSERT_EQ(res.order.size(), g.num_nodes());
    const Time t =
        simulated_completion(g, machine, res.priority_list(), window);
    // Never worse than the unscheduled program.
    const auto src =
        schedule_trace_per_block(g, machine, BlockScheduler::kSourceOrder);
    EXPECT_LE(t, simulated_completion(g, machine, src, window))
        << "W=" << window;
  }
}

TEST(Integration, KernelsThroughLoopPipeline) {
  const MachineModel machine = rs6000_like();
  for (const auto& [name, loop] : all_loop_kernels()) {
    const DepGraph g = build_loop_graph(loop, machine);
    const auto evaluator = [&](const std::vector<NodeId>& order) {
      return steady_state_period(g, machine, order, 2);
    };
    LoopSingleOptions opts;
    opts.prune = LoopSingleOptions::Prune::kNever;
    const LoopCandidate best =
        schedule_single_block_loop(g, machine, evaluator, opts);
    ASSERT_EQ(best.order.size(), g.num_nodes()) << name;
    // Steady state must at least cover the per-iteration work on the
    // busiest unit class (single-issue: total instruction count).
    EXPECT_GE(evaluator(best.order) + 1e-9,
              static_cast<double>(g.num_nodes()) /
                  machine.issue_width())
        << name;
  }
}

TEST(Integration, EmittedCodeIsAlwaysExecutable) {
  // Any per-block order from any scheduler must simulate to completion at
  // any window size (the simulator hard-checks topological order, unit
  // typing and progress).
  Prng prng(0x1e57);
  const BlockScheduler kinds[] = {
      BlockScheduler::kSourceOrder, BlockScheduler::kCriticalPathList,
      BlockScheduler::kGibbonsMuchnick, BlockScheduler::kWarren,
      BlockScheduler::kRank, BlockScheduler::kRankDelayed};
  using MachineFactory = MachineModel (*)();
  for (const MachineFactory make : {MachineFactory{scalar01},
                                    MachineFactory{deep_pipeline},
                                    MachineFactory{vliw4}}) {
    const MachineModel machine = make();
    for (int trial = 0; trial < 4; ++trial) {
      const DepGraph g = random_machine_trace(prng, machine, 3, 8, 0.3, 2);
      for (const auto kind : kinds) {
        const auto list = schedule_trace_per_block(g, machine, kind);
        for (const int w : {1, 3, 16}) {
          const Time t = simulated_completion(g, machine, list, w);
          EXPECT_GE(t, g.total_work() / machine.total_units());
        }
      }
      const RankScheduler scheduler(g, machine);
      LookaheadOptions opts;
      opts.window = 4;
      const LookaheadResult res = schedule_trace(scheduler, opts);
      EXPECT_GT(simulated_completion(g, machine, res.priority_list(), 4), 0);
    }
  }
}

TEST(Integration, BoundaryTracesShowTheAnticipatoryEffect) {
  // The paper's motivating pattern must produce strict wins at small W.
  Prng prng(0xb0b0);
  const MachineModel machine = deep_pipeline();
  int strict_wins = 0;
  for (int trial = 0; trial < 10; ++trial) {
    BoundaryTraceParams params;
    params.boundary_latency = 3;
    const DepGraph g = boundary_trace(prng, params);
    const RankScheduler scheduler(g, machine);
    LookaheadOptions opts;
    opts.window = 2;
    const LookaheadResult res = schedule_trace(scheduler, opts);
    const Time anticipatory =
        simulated_completion(g, machine, res.priority_list(), 2);
    const auto rank_list =
        schedule_trace_per_block(g, machine, BlockScheduler::kRank);
    const Time local = simulated_completion(g, machine, rank_list, 2);
    EXPECT_LE(anticipatory, local);
    strict_wins += (anticipatory < local);
  }
  EXPECT_GE(strict_wins, 5);
}

TEST(Integration, LegalityOfOptimalCaseOutput) {
  // In the restricted case, re-executing the emitted list greedily yields a
  // schedule satisfying both the Window and the Ordering Constraints.
  Prng prng(0x1e6a);
  const MachineModel machine = scalar01();
  for (int trial = 0; trial < 8; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 3;
    params.block.num_nodes = 6;
    params.block.edge_prob = 0.35;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    const RankScheduler scheduler(g, machine);
    const int window = static_cast<int>(prng.uniform(2, 6));
    LookaheadOptions opts;
    opts.window = window;
    const LookaheadResult res = schedule_trace(scheduler, opts);

    // Execute the list and reconstruct the schedule it implies.
    const SimResult sim =
        simulate_list(g, machine, res.priority_list(), window);
    Schedule s(&g, NodeSet::all(g.num_nodes()), 1);
    for (const NodeId id : res.priority_list()) {
      s.place(id, sim.issue_time[id], 0);
    }
    const LegalityReport report =
        check_legal(scheduler, s, window, params.num_blocks);
    EXPECT_TRUE(report.legal) << report.reason;
  }
}

}  // namespace
}  // namespace ais
