// Interpreter unit tests plus the semantic-preservation oracle: every
// scheduler's reordered code must compute exactly the same final state as
// the original program, from random initial states.
#include <gtest/gtest.h>

#include "baselines/block_schedulers.hpp"
#include "driver/anticipatory.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "ir/interp.hpp"
#include "machine/machine_model.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_ir.hpp"

namespace ais {
namespace {

TEST(Interp, ArithmeticAndImmediates) {
  InterpState s;
  execute(Instruction::li(gpr(1), 40), s);
  execute(Instruction::li(gpr(2), 2), s);
  execute(Instruction::alu(Opcode::kAdd, gpr(3), gpr(1), gpr(2)), s);
  EXPECT_EQ(s.get(gpr(3)), 42);
  execute(Instruction::alu(Opcode::kSub, gpr(4), gpr(3), gpr(2)), s);
  EXPECT_EQ(s.get(gpr(4)), 40);
  execute(Instruction::alu(Opcode::kMul, gpr(5), gpr(2), gpr(2)), s);
  EXPECT_EQ(s.get(gpr(5)), 4);
  execute(Instruction::alu_imm(Opcode::kShl, gpr(6), gpr(2), 3), s);
  EXPECT_EQ(s.get(gpr(6)), 16);
  execute(Instruction::mov(gpr(7), gpr(6)), s);
  EXPECT_EQ(s.get(gpr(7)), 16);
}

TEST(Interp, DivisionByZeroIsTotal) {
  InterpState s;
  execute(Instruction::li(gpr(1), 7), s);
  execute(Instruction::li(gpr(2), 0), s);
  execute(Instruction::alu(Opcode::kDiv, gpr(3), gpr(1), gpr(2)), s);
  EXPECT_EQ(s.get(gpr(3)), 0);
}

TEST(Interp, MemoryRoundTripAndTagSpaces) {
  InterpState s;
  execute(Instruction::li(gpr(1), 100), s);
  execute(Instruction::li(gpr(2), 42), s);
  execute(Instruction::store({gpr(1), 8, "x"}, gpr(2)), s);
  execute(Instruction::load(gpr(3), {gpr(1), 8, "x"}), s);
  EXPECT_EQ(s.get(gpr(3)), 42);
  // Same address, different tag: a distinct region.
  execute(Instruction::load(gpr(4), {gpr(1), 8, "y"}), s);
  EXPECT_NE(s.get(gpr(4)), 42);
  // Uninitialized loads are deterministic.
  execute(Instruction::load(gpr(5), {gpr(1), 8, "y"}), s);
  EXPECT_EQ(s.get(gpr(5)), s.get(gpr(4)));
}

TEST(Interp, UpdateFormsAdvanceTheBase) {
  InterpState s;
  execute(Instruction::li(gpr(7), 100), s);
  execute(Instruction::li(gpr(6), 5), s);
  execute(Instruction::store({gpr(7), 4, "y"}, gpr(6), /*update=*/true), s);
  EXPECT_EQ(s.get(gpr(7)), 104);
  execute(Instruction::li(gpr(7), 100), s);
  execute(Instruction::load(gpr(1), {gpr(7), 4, "y"}, /*update=*/true), s);
  EXPECT_EQ(s.get(gpr(1)), 5);
  EXPECT_EQ(s.get(gpr(7)), 104);
}

TEST(Interp, CompareAndBranch) {
  InterpState s;
  execute(Instruction::li(gpr(1), 0), s);
  execute(Instruction::cmp(cr(1), gpr(1), 0), s);
  EXPECT_EQ(s.get(cr(1)), 1);
  execute(Instruction::branch(Opcode::kBt, cr(1), "L"), s);
  EXPECT_TRUE(s.last_branch_taken());
  execute(Instruction::li(gpr(1), 3), s);
  execute(Instruction::cmp(cr(1), gpr(1), 0), s);
  execute(Instruction::branch(Opcode::kBt, cr(1), "L"), s);
  EXPECT_FALSE(s.last_branch_taken());
}

TEST(Interp, Fig3KernelComputesPartialProducts) {
  // Run three iterations of the paper's CL.18 loop body by hand and check
  // the y stores: y[i] = y[i-1] * x[i] with the software-pipelined store.
  const BasicBlock body = partial_product_kernel().body.blocks[0];
  InterpState s;
  s.set(gpr(7), 1000);  // &x[0]
  s.set(gpr(5), 2000);  // &y[-1] (store writes y[i-1])
  s.set(gpr(0), 3);     // y[0] already computed
  // Seed x[1..3].
  s.store("x", 1004, 5);
  s.store("x", 1008, 7);
  s.store("x", 1012, 0);
  for (int iter = 0; iter < 3; ++iter) s = run_block(body, s);
  EXPECT_EQ(s.load("y", 2004), 3);       // y[0]
  EXPECT_EQ(s.load("y", 2008), 15);      // 3 * 5
  EXPECT_EQ(s.load("y", 2012), 105);     // 15 * 7
  EXPECT_TRUE(s.last_branch_taken());    // x[3] == 0 exits
}

TEST(Interp, RandomStatesDifferAcrossSeedsAndMatchWithinSeed) {
  EXPECT_EQ(InterpState::random(5), InterpState::random(5));
  EXPECT_FALSE(InterpState::random(5) == InterpState::random(6));
}

// --- The oracle: scheduling never changes program semantics --------------

struct OracleParam {
  const char* name;
  MachineModel (*machine)();
  std::uint64_t seed;
};

class SchedulingSemantics : public ::testing::TestWithParam<OracleParam> {};

TEST_P(SchedulingSemantics, ReorderedTraceComputesIdenticalState) {
  Prng prng(GetParam().seed);
  const MachineModel machine = GetParam().machine();
  for (int trial = 0; trial < 15; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 14));
    params.num_gprs = static_cast<int>(prng.uniform(3, 8));
    params.mem_frac = prng.uniform01() * 0.5;
    const Trace trace =
        random_ir_trace(prng, params, static_cast<int>(prng.uniform(1, 4)));

    const InterpState init = InterpState::random(prng());
    const InterpState expected = run_trace(trace, init);

    // Anticipatory (facade).
    const int window = static_cast<int>(prng.uniform(1, 7));
    const ScheduledTrace anticipatory = schedule(trace, machine, window);
    EXPECT_TRUE(run_trace(Trace{anticipatory.blocks}, init) == expected)
        << "anticipatory trial " << trial;

    // Every baseline, reassembled the same way.
    const DepGraph g = build_trace_graph(trace, machine);
    std::vector<const Instruction*> flat;
    for (const auto& bb : trace.blocks) {
      for (const auto& inst : bb.insts) flat.push_back(&inst);
    }
    for (const BlockScheduler kind :
         {BlockScheduler::kCriticalPathList, BlockScheduler::kGibbonsMuchnick,
          BlockScheduler::kWarren, BlockScheduler::kRank,
          BlockScheduler::kRankDelayed}) {
      Trace reordered;
      NodeId next = 0;
      for (const auto& bb : trace.blocks) {
        NodeSet block(g.num_nodes());
        for (std::size_t i = 0; i < bb.insts.size(); ++i) block.insert(next++);
        BasicBlock out;
        out.label = bb.label;
        for (const NodeId id : schedule_block(g, machine, block, kind)) {
          out.insts.push_back(*flat[id]);
        }
        reordered.blocks.push_back(std::move(out));
      }
      EXPECT_TRUE(run_trace(reordered, init) == expected)
          << block_scheduler_name(kind) << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, SchedulingSemantics,
    ::testing::Values(OracleParam{"scalar01", scalar01, 0x5e31},
                      OracleParam{"rs6000", rs6000_like, 0x5e32},
                      OracleParam{"deep", deep_pipeline, 0x5e33},
                      OracleParam{"vliw4", vliw4, 0x5e34}),
    [](const ::testing::TestParamInfo<OracleParam>& info) {
      return info.param.name;
    });

TEST(SchedulingSemantics, LoopBodiesPreserveSemanticsOverIterations) {
  Prng prng(0x100e);
  const MachineModel machine = rs6000_like();
  for (int trial = 0; trial < 10; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 9));
    params.num_gprs = 5;
    params.mem_frac = 0.3;
    const Loop loop = random_ir_loop(prng, params);

    const InterpState init = InterpState::random(prng());
    InterpState expected = init;
    for (int k = 0; k < 4; ++k) {
      expected = run_block(loop.body.blocks[0], expected);
    }

    const ScheduledLoop scheduled = schedule(loop, machine, 2);
    InterpState got = init;
    for (int k = 0; k < 4; ++k) {
      got = run_block(scheduled.blocks[0], got);
    }
    EXPECT_TRUE(got == expected) << "trial " << trial;
  }
}

TEST(SchedulingSemantics, PaperKernelsPreserveSemantics) {
  const MachineModel machine = rs6000_like();
  for (const auto& [name, loop] : all_loop_kernels()) {
    const InterpState init = InterpState::random(0xabc);
    InterpState expected = init;
    InterpState got = init;
    const ScheduledLoop scheduled = schedule(loop, machine, 2);
    for (int k = 0; k < 3; ++k) {
      expected = run_block(loop.body.blocks[0], expected);
      got = run_block(scheduled.blocks[0], got);
    }
    EXPECT_TRUE(got == expected) << name;
  }
}

}  // namespace
}  // namespace ais
