// Unit tests for the content-addressed schedule cache: canonical key
// semantics (monotone-relabeling equality, relabeling-invariant structural
// hash), round trips of both entry kinds, the dependence certificate, LRU
// eviction, the disk tier's validation, and cross-trace reuse end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/lookahead.hpp"
#include "core/schedule_cache.hpp"
#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"
#include "obs/obs.hpp"

namespace ais {
namespace {

/// Diamond a -> {b, c} -> d with unit latencies, built in the id order
/// given by `perm` (perm[k] = position at which the k-th logical node is
/// added), so tests can construct isomorphic graphs under arbitrary
/// relabelings.  Logical roles: 0 = a, 1 = b, 2 = c, 3 = d.
DepGraph diamond(const std::vector<int>& perm = {0, 1, 2, 3}) {
  DepGraph g;
  std::vector<NodeId> id(4);
  std::vector<int> logical_at(4);
  for (int pos = 0; pos < 4; ++pos) {
    for (int logical = 0; logical < 4; ++logical) {
      if (perm[logical] == pos) logical_at[pos] = logical;
    }
  }
  for (int pos = 0; pos < 4; ++pos) {
    id[logical_at[pos]] = g.add_node("n" + std::to_string(pos), 1, 0, 0);
  }
  g.add_edge(id[0], id[1], 1, 0);
  g.add_edge(id[0], id[2], 1, 0);
  g.add_edge(id[1], id[3], 1, 0);
  g.add_edge(id[2], id[3], 1, 0);
  return g;
}

CacheInstanceParams params_for(const MachineModel& m, int window = 4) {
  CacheInstanceParams p;
  p.machine = &m;
  p.window = window;
  p.huge = 100;
  return p;
}

std::vector<NodeSet> one_block(const DepGraph& g) {
  return {NodeSet::all(g.num_nodes())};
}

std::filesystem::path fresh_temp_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("ais_cache_" + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CacheKey, EqualUnderMonotoneRelabeling) {
  const MachineModel machine = scalar01();
  const DepGraph g = diamond();

  // Same diamond shifted up by one id: node 0 is an unrelated spectator
  // outside the scheduled block, so the instance is a monotone relabeling.
  DepGraph shifted;
  shifted.add_node("spectator", 1, 0, 0);
  const NodeId a = shifted.add_node("a", 1, 0, 0);
  const NodeId b = shifted.add_node("b", 1, 0, 0);
  const NodeId c = shifted.add_node("c", 1, 0, 0);
  const NodeId d = shifted.add_node("d", 1, 0, 0);
  shifted.add_edge(a, b, 1, 0);
  shifted.add_edge(a, c, 1, 0);
  shifted.add_edge(b, d, 1, 0);
  shifted.add_edge(c, d, 1, 0);

  const CacheKey k1 =
      build_trace_key(g, one_block(g), params_for(machine));
  const CacheKey k2 = build_trace_key(
      shifted, {NodeSet(5, {a, b, c, d})}, params_for(machine));

  EXPECT_EQ(k1.bytes, k2.bytes);
  EXPECT_EQ(k1.hash, k2.hash);
  EXPECT_EQ(k1.ids, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(k2.ids, (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(CacheKey, StructuralHashInvariantUnderAnyRelabeling) {
  const MachineModel machine = scalar01();
  const DepGraph g = diamond();
  const CacheKey base =
      build_trace_key(g, one_block(g), params_for(machine));
  EXPECT_EQ(structural_hash(base), base.hash);

  // Non-monotone relabelings: the serialized bytes differ (the scheduler's
  // id tie-break makes those instances non-interchangeable) but the
  // Weisfeiler-Leman hash must not, so they share a cache bucket.
  for (const auto& perm : std::vector<std::vector<int>>{
           {3, 1, 2, 0}, {1, 0, 3, 2}, {2, 3, 0, 1}}) {
    const DepGraph h = diamond(perm);
    const CacheKey k =
        build_trace_key(h, one_block(h), params_for(machine));
    EXPECT_EQ(k.hash, base.hash) << "perm " << perm[0] << perm[1];
    EXPECT_NE(k.bytes, base.bytes);
    EXPECT_EQ(structural_hash(k), k.hash);
  }
}

TEST(CacheKey, ContextChangesTheKey) {
  const MachineModel scalar = scalar01();
  const MachineModel deep = deep_pipeline();
  const DepGraph g = diamond();
  const CacheKey base =
      build_trace_key(g, one_block(g), params_for(scalar));

  const CacheKey wider =
      build_trace_key(g, one_block(g), params_for(scalar, /*window=*/7));
  EXPECT_NE(base.bytes, wider.bytes);

  const CacheKey other_machine =
      build_trace_key(g, one_block(g), params_for(deep));
  EXPECT_NE(base.bytes, other_machine.bytes);

  CacheInstanceParams no_chop = params_for(scalar);
  no_chop.do_chop = false;
  EXPECT_NE(base.bytes, build_trace_key(g, one_block(g), no_chop).bytes);

  // A latency change is a different instance even with identical topology.
  DepGraph slow;
  const NodeId a = slow.add_node("a", 1, 0, 0);
  const NodeId b = slow.add_node("b", 1, 0, 0);
  const NodeId c = slow.add_node("c", 1, 0, 0);
  const NodeId d = slow.add_node("d", 1, 0, 0);
  slow.add_edge(a, b, 3, 0);
  slow.add_edge(a, c, 1, 0);
  slow.add_edge(b, d, 1, 0);
  slow.add_edge(c, d, 1, 0);
  EXPECT_NE(base.bytes,
            build_trace_key(slow, one_block(slow), params_for(scalar)).bytes);
}

TEST(ScheduleCache, TraceValueRoundTrip) {
  ScheduleCache cache;
  const MachineModel machine = scalar01();
  const DepGraph g = diamond();
  const CacheKey key =
      build_trace_key(g, one_block(g), params_for(machine));

  EXPECT_FALSE(cache.lookup_trace(key).has_value());

  TraceCacheValue v;
  v.order = {0, 2, 1, 3};
  v.merged_makespans = {4};
  v.prefixes_emitted = 1;
  v.counter_deltas["merge.rounds"] = 3;
  cache.insert_trace(key, v);

  const auto hit = cache.lookup_trace(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->order, v.order);
  EXPECT_EQ(hit->merged_makespans, v.merged_makespans);
  EXPECT_EQ(hit->prefixes_emitted, 1u);
  EXPECT_EQ(hit->counter_deltas, v.counter_deltas);
}

TEST(ScheduleCache, StepValueRoundTrip) {
  ScheduleCache cache;
  const MachineModel machine = scalar01();
  const DepGraph g = diamond();
  const NodeSet old(4, {2, 3});
  const NodeSet fresh(4, {0, 1});
  const DeadlineMap deadlines{9, 9, 7, 8};
  const CacheKey key = build_step_key(g, old, fresh, deadlines, /*t_old=*/2,
                                      params_for(machine));

  EXPECT_FALSE(cache.lookup_step(key).has_value());

  StepCacheValue v;
  v.emitted = {0};
  v.suffix_order = {2, 1, 3};
  v.suffix_deadlines = {5, 6, 7};
  v.suffix_makespan = 3;
  v.merged_makespan = 5;
  v.counter_deltas["rank.incremental_nodes"] = 11;
  cache.insert_step(key, v);

  const auto hit = cache.lookup_step(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->emitted, v.emitted);
  EXPECT_EQ(hit->suffix_order, v.suffix_order);
  EXPECT_EQ(hit->suffix_deadlines, v.suffix_deadlines);
  EXPECT_EQ(hit->suffix_makespan, 3);
  EXPECT_EQ(hit->merged_makespan, 5);
  EXPECT_EQ(hit->counter_deltas, v.counter_deltas);
}

TEST(ScheduleCache, CertificateRejectsDependenceViolations) {
  ScheduleCache cache;
  const MachineModel machine = scalar01();
  const DepGraph g = diamond();
  const CacheKey key =
      build_trace_key(g, one_block(g), params_for(machine));

  TraceCacheValue bad;
  bad.order = {3, 1, 2, 0};  // sink before source on every edge
  cache.insert_trace(key, bad);
  EXPECT_FALSE(cache.lookup_trace(key).has_value());

  TraceCacheValue not_a_permutation;
  not_a_permutation.order = {0, 1, 1, 3};
  cache.insert_trace(key, not_a_permutation);
  EXPECT_FALSE(cache.lookup_trace(key).has_value());
}

TEST(ScheduleCache, LruEvictsUnderCapacityPressure) {
  // Tiny budget: a few hundred bytes per shard, roughly one entry each.
  ScheduleCache cache(/*capacity_bytes=*/4096);
  const MachineModel machine = scalar01();
  const DepGraph g = diamond();

  std::vector<CacheKey> keys;
  for (int w = 1; w <= 64; ++w) {
    keys.push_back(build_trace_key(g, one_block(g), params_for(machine, w)));
    TraceCacheValue v;
    v.order = {0, 1, 2, 3};
    cache.insert_trace(keys.back(), v);
  }

  int present = 0;
  for (const CacheKey& key : keys) {
    present += cache.lookup_trace(key).has_value() ? 1 : 0;
  }
  EXPECT_LT(present, 64);
  // The most recently inserted entry is never the eviction victim.
  EXPECT_TRUE(cache.lookup_trace(keys.back()).has_value());
}

TEST(ScheduleCache, DiskTierRoundTripsAcrossInstances) {
  const auto dir = fresh_temp_dir("roundtrip");
  const MachineModel machine = scalar01();
  const DepGraph g = diamond();
  const CacheKey key =
      build_trace_key(g, one_block(g), params_for(machine));
  TraceCacheValue v;
  v.order = {0, 1, 2, 3};
  v.merged_makespans = {4};

  {
    ScheduleCache writer;
    writer.set_disk_dir(dir.string());
    writer.insert_trace(key, v);
  }

  ScheduleCache reader;
  reader.set_disk_dir(dir.string());
  const auto hit = reader.lookup_trace(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->order, v.order);
  EXPECT_EQ(hit->merged_makespans, v.merged_makespans);
  // The disk hit was promoted: dropping the directory keeps it servable.
  reader.set_disk_dir("");
  EXPECT_TRUE(reader.lookup_trace(key).has_value());
  std::filesystem::remove_all(dir);
}

TEST(ScheduleCache, CorruptDiskEntriesDegradeToMisses) {
  const auto dir = fresh_temp_dir("corrupt");
  const MachineModel machine = scalar01();
  const DepGraph g = diamond();
  const CacheKey key =
      build_trace_key(g, one_block(g), params_for(machine));
  {
    ScheduleCache writer;
    writer.set_disk_dir(dir.string());
    TraceCacheValue v;
    v.order = {0, 1, 2, 3};
    writer.insert_trace(key, v);
  }

  std::filesystem::path entry;
  for (const auto& f : std::filesystem::directory_iterator(dir)) {
    if (f.path().extension() == ".aisc") entry = f.path();
  }
  ASSERT_FALSE(entry.empty());

  std::string blob;
  {
    std::ifstream in(entry, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    blob = os.str();
  }
  const auto rewrite = [&entry](const std::string& bytes) {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out << bytes;
  };
  const auto miss = [&dir, &key](const std::string& tag) {
    ScheduleCache reader;
    reader.set_disk_dir(dir.string());
    EXPECT_FALSE(reader.lookup_trace(key).has_value()) << tag;
  };

  // Flip a byte inside the serialized key: the stored key no longer equals
  // the probe's, so the load is rejected before the value is even decoded.
  ASSERT_GT(blob.size(), 60u);
  std::string bad_key = blob;
  bad_key[40] ^= 0x01;
  rewrite(bad_key);
  miss("key corruption");

  // Flip a byte of the stored order (the value's trailing section is
  // order[4] + makespans[1] + prefixes + empty counters = 44 bytes; the
  // first order element sits 40 bytes from the end): the dependence
  // certificate re-checked on load must reject it.
  std::string bad_value = blob;
  bad_value[blob.size() - 40] ^= 0x02;
  rewrite(bad_value);
  miss("value corruption");

  // A truncated file is also just a miss.
  rewrite(blob.substr(0, 10));
  miss("truncation");

  // And the pristine bytes still hit, so the misses above were the
  // corruption's doing.
  rewrite(blob);
  {
    ScheduleCache reader;
    reader.set_disk_dir(dir.string());
    EXPECT_TRUE(reader.lookup_trace(key).has_value());
  }
  std::filesystem::remove_all(dir);
}

TEST(ScheduleCache, ActiveHonorsEnableAndBypass) {
  ScheduleCache& global = ScheduleCache::global();
  const bool was_enabled = global.enabled();
  global.set_enabled(true);
  EXPECT_EQ(ScheduleCache::active(), &global);
  {
    ScheduleCache::ScopedBypass bypass;
    EXPECT_EQ(ScheduleCache::active(), nullptr);
    {
      ScheduleCache::ScopedBypass nested;
      EXPECT_EQ(ScheduleCache::active(), nullptr);
    }
    EXPECT_EQ(ScheduleCache::active(), nullptr);
  }
  EXPECT_EQ(ScheduleCache::active(), &global);
  global.set_enabled(false);
  EXPECT_EQ(ScheduleCache::active(), nullptr);
  global.set_enabled(was_enabled);
}

TEST(ScheduleCache, CrossTraceReuseRemapsOntoCallerIds) {
  ScheduleCache& global = ScheduleCache::global();
  const bool was_enabled = global.enabled();
  global.set_enabled(true);
  global.clear();

  const MachineModel machine = rs6000_like();
  LookaheadOptions opts;
  opts.window = 4;

  const DepGraph g = diamond();
  const RankScheduler cold(g, machine);
  const LookaheadResult first = schedule_trace(cold, one_block(g), opts);

  // Monotone relabeling (+1 shift) of the same instance in a fresh graph:
  // the solve must be served from the cache and remapped onto the new ids.
  DepGraph shifted;
  shifted.add_node("spectator", 1, 0, 1);
  const NodeId a = shifted.add_node("a", 1, 0, 0);
  const NodeId b = shifted.add_node("b", 1, 0, 0);
  const NodeId c = shifted.add_node("c", 1, 0, 0);
  const NodeId d = shifted.add_node("d", 1, 0, 0);
  shifted.add_edge(a, b, 1, 0);
  shifted.add_edge(a, c, 1, 0);
  shifted.add_edge(b, d, 1, 0);
  shifted.add_edge(c, d, 1, 0);

  const std::uint64_t hits_before =
      obs::counter_value(obs::ctr::kCacheHits);
  const RankScheduler warm(shifted, machine);
  const LookaheadResult second =
      schedule_trace(warm, {NodeSet(5, {a, b, c, d})}, opts);
  if (obs::enabled()) {
    EXPECT_GT(obs::counter_value(obs::ctr::kCacheHits), hits_before);
  }

  ASSERT_EQ(second.order.size(), first.order.size());
  for (std::size_t i = 0; i < first.order.size(); ++i) {
    EXPECT_EQ(second.order[i], first.order[i] + 1);
  }
  EXPECT_EQ(second.diag.merged_makespans, first.diag.merged_makespans);
  global.set_enabled(was_enabled);
}

}  // namespace
}  // namespace ais
