// aisd server tests: the framed protocol round-trips, concurrent clients
// get byte-identical answers to a serial offline compile (assembly,
// diagnostics and non-cache counter streams) over both transports and
// every priority mix, malformed and oversized frames turn into error
// replies instead of crashes, the QoS admission queue defers over-quota
// work without dropping it and ages bulk work out of starvation, read
// deadlines cut stalled peers but spare idle connections, graceful
// shutdown drains every admitted request, and the warm cache is shared
// across tenant connections.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/schedule_cache.hpp"
#include "ir/instruction.hpp"
#include "obs/obs.hpp"
#include "server/admission.hpp"
#include "server/client.hpp"
#include "server/compile_service.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/prng.hpp"
#include "workloads/random_ir.hpp"

#ifndef AISC_BINARY
#error "AISC_BINARY must point at the aisc executable"
#endif
#ifndef AIS_EXAMPLES_DIR
#error "AIS_EXAMPLES_DIR must point at the shipped examples/"
#endif

namespace ais {
namespace {

std::string unique_socket_path(const char* tag) {
  static std::atomic<int> seq{0};
  return ::testing::TempDir() + "/aisd_" + tag + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(seq.fetch_add(1)) + ".sock";
}

std::string render_trace(const Trace& trace) {
  std::string text;
  for (const BasicBlock& bb : trace.blocks) {
    text += "block " + bb.label + ":\n";
    for (const Instruction& inst : bb.insts) {
      text += "  " + inst.to_string() + "\n";
    }
  }
  return text;
}

std::vector<std::string> make_bodies(std::size_t count, int blocks,
                                     int insts, std::uint64_t seed) {
  Prng prng(seed);
  RandomIrParams params;
  params.num_insts = insts;
  std::vector<std::string> bodies;
  bodies.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bodies.push_back(render_trace(random_ir_trace(prng, params, blocks)));
  }
  return bodies;
}

/// The serial offline reference for one body: compile_ir with the schedule
/// cache bypassed — exactly what a cold, single-request aisc run computes.
server::Response serial_reference(const std::string& body,
                                  const server::CompileOptions& options) {
  ScheduleCache::ScopedBypass bypass;
  server::WorkerScratch scratch;
  server::Response reply;
  server::compile_ir(body, options, scratch, &reply);
  return reply;
}

std::uint64_t counter_total(const char* name) {
  for (const auto& [counter, value] : obs::counters_snapshot()) {
    if (counter == name) return value;
  }
  return 0;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(const char* tag,
                   const std::function<void(server::ServerOptions&)>& tweak =
                       nullptr) {
    server::ServerOptions options;
    options.socket_path = unique_socket_path(tag);
    options.threads = 4;
    if (tweak) tweak(options);
    server_ = std::make_unique<server::Server>(options);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    socket_path_ = options.socket_path;
    if (!options.tcp_addr.empty()) {
      tcp_target_ = "127.0.0.1:" + std::to_string(server_->tcp_port());
    }
  }

  bool Connect(server::Client& client, bool tcp, std::string* error) const {
    return tcp ? client.connect_tcp(tcp_target_, error)
               : client.connect(socket_path_, error);
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  server::Request compile_request(const std::string& body,
                                  bool profile = false,
                                  bool verify = false) const {
    server::Request req;
    req.verb = server::kVerbCompile;
    req.options["mode"] = "trace";
    req.options["machine"] = "rs6000";
    req.options["window"] = "2";
    if (profile) req.options["profile"] = "1";
    if (verify) req.options["verify"] = "1";
    req.body = body;
    return req;
  }

  /// The differential body shared by the unix and TCP transport tests:
  /// concurrent clients at several fan-outs, every request tagged with a
  /// rotating priority/tenant mix, replies compared byte-for-byte against
  /// the serial offline reference — QoS options may reorder service but
  /// must never change a single output byte.
  void RunDifferential(bool tcp) {
    const std::vector<std::string> bodies = make_bodies(24, 3, 10, 17);

    server::CompileOptions ref_options;
    ref_options.mode = "trace";
    ref_options.machine = "rs6000";
    ref_options.window = 2;
    ref_options.profile = true;
    ref_options.verify = true;
    std::vector<server::Response> reference;
    reference.reserve(bodies.size());
    for (const std::string& body : bodies) {
      reference.push_back(serial_reference(body, ref_options));
      ASSERT_TRUE(reference.back().ok) << reference.back().message;
    }

    static constexpr const char* kPriorities[] = {"interactive", "normal",
                                                  "bulk"};
    static constexpr const char* kTenants[] = {"alpha", "beta"};
    for (const std::size_t clients : {std::size_t{1}, std::size_t{8},
                                      std::size_t{32}}) {
      const std::size_t per_client = 12;
      std::atomic<int> failures{0};
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          server::Client client;
          std::string error;
          if (!Connect(client, tcp, &error)) {
            ADD_FAILURE() << error;
            failures.fetch_add(1);
            return;
          }
          for (std::size_t i = 0; i < per_client; ++i) {
            const std::size_t which = (c * per_client + i) % bodies.size();
            server::Request req =
                compile_request(bodies[which], /*profile=*/true,
                                /*verify=*/true);
            req.options["priority"] = kPriorities[(c + i) % 3];
            req.options["tenant"] = kTenants[c % 2];
            server::Response resp;
            if (!client.call(req, &resp, &error)) {
              ADD_FAILURE() << error;
              failures.fetch_add(1);
              return;
            }
            const server::Response& ref = reference[which];
            if (!resp.ok || resp.asm_text != ref.asm_text ||
                resp.diag_text != ref.diag_text ||
                resp.counters != ref.counters ||
                resp.option("verified") != ref.option("verified")) {
              failures.fetch_add(1);
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      EXPECT_EQ(failures.load(), 0)
          << "divergence from serial reference at " << clients << " clients"
          << (tcp ? " (tcp)" : " (unix)");
    }
  }

  std::unique_ptr<server::Server> server_;
  std::string socket_path_;
  std::string tcp_target_;
};

// --- protocol unit tests --------------------------------------------------

TEST(ServerProtocol, FrameRoundTrip) {
  std::string wire;
  server::append_frame(wire, "hello");
  server::append_frame(wire, "");
  std::string payload;
  ASSERT_EQ(server::take_frame(wire, 1 << 20, &payload),
            server::FrameStatus::kFrame);
  EXPECT_EQ(payload, "hello");
  ASSERT_EQ(server::take_frame(wire, 1 << 20, &payload),
            server::FrameStatus::kFrame);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(server::take_frame(wire, 1 << 20, &payload),
            server::FrameStatus::kNeedMore);
}

TEST(ServerProtocol, OversizedFrameDetected) {
  std::string wire;
  server::append_frame(wire, std::string(4096, 'x'));
  std::string payload;
  EXPECT_EQ(server::take_frame(wire, 1024, &payload),
            server::FrameStatus::kOversized);
}

TEST(ServerProtocol, RequestRoundTrip) {
  server::Request req;
  req.verb = server::kVerbCompile;
  req.options["mode"] = "trace";
  req.options["window"] = "4";
  req.body = "block a:\n  LI r1, 0\n";
  server::Request parsed;
  std::string error;
  ASSERT_TRUE(server::parse_request(req.encode(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.verb, req.verb);
  EXPECT_EQ(parsed.options, req.options);
  EXPECT_EQ(parsed.body, req.body);
}

TEST(ServerProtocol, ResponseRoundTrip) {
  server::Response resp;
  resp.ok = true;
  resp.options["id"] = "7";
  resp.asm_text = "block a:\n  LI r1, 0\n";
  resp.diag_text = "verify: ok\n";
  resp.counters.emplace_back("rank.sessions", 3);
  server::Response parsed;
  std::string error;
  ASSERT_TRUE(server::parse_response(resp.encode(), &parsed, &error))
      << error;
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.option("id"), "7");
  EXPECT_EQ(parsed.asm_text, resp.asm_text);
  EXPECT_EQ(parsed.diag_text, resp.diag_text);
  EXPECT_EQ(parsed.counters, resp.counters);
}

// --- differential: concurrent server vs serial offline compile ------------

TEST_F(ServerTest, ByteIdenticalAcrossConcurrencyLevels) {
  StartServer("diff");
  RunDifferential(/*tcp=*/false);
}

TEST_F(ServerTest, ByteIdenticalOverTcp) {
  StartServer("difftcp", [](server::ServerOptions& options) {
    options.tcp_addr = "127.0.0.1:0";
  });
  RunDifferential(/*tcp=*/true);
}

TEST_F(ServerTest, MatchesOfflineAiscBinary) {
  StartServer("aisc");
  struct Case {
    const char* file;
    const char* mode;
  };
  for (const Case& c : {Case{"two_block_trace.s", "trace"},
                        Case{"memory_alias.s", "trace"},
                        Case{"fig3_loop.s", "loop"},
                        Case{"diamond_cfg.s", "cfg"}}) {
    const std::string path = std::string(AIS_EXAMPLES_DIR) + "/" + c.file;
    const std::string out_path = ::testing::TempDir() + "/aisc_ref.txt";
    const std::string cmd = std::string(AISC_BINARY) + " --in " + path +
                            " --mode " + c.mode +
                            " --machine rs6000 --window 2 > " + out_path +
                            " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    server::Client client;
    std::string error;
    ASSERT_TRUE(client.connect(socket_path_, &error)) << error;
    server::Request req;
    req.verb = server::kVerbCompile;
    req.options["mode"] = c.mode;
    req.options["machine"] = "rs6000";
    req.options["window"] = "2";
    req.body = slurp(path);
    server::Response resp;
    ASSERT_TRUE(client.call(req, &resp, &error)) << error;
    ASSERT_TRUE(resp.ok) << resp.message;
    EXPECT_EQ(resp.asm_text, slurp(out_path)) << c.file;
  }
}

// --- robustness -----------------------------------------------------------

TEST_F(ServerTest, MalformedRequestsGetErrorRepliesNotCrashes) {
  StartServer("malformed");
  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;

  struct Case {
    const char* name;
    std::string payload;
  };
  const std::string valid_body = "block a:\n  LI r1, 1\n  ADD r2, r1, r1\n";
  for (const Case& c : {
           Case{"empty payload", ""},
           Case{"unknown verb", "FROBNICATE\n"},
           Case{"bad option token", "COMPILE modetrace\n" + valid_body},
           Case{"unknown option", "COMPILE wibble=1\n" + valid_body},
           Case{"unknown machine", "COMPILE machine=pdp11\n" + valid_body},
           Case{"unknown mode", "COMPILE mode=warp\n" + valid_body},
           Case{"negative window", "COMPILE window=-3\n" + valid_body},
           Case{"unparseable window", "COMPILE window=banana\n" + valid_body},
           Case{"empty program", "COMPILE mode=trace\n"},
           Case{"garbage program", "COMPILE mode=trace\nLI LI LI\n"},
           Case{"bad opcode", "COMPILE\nblock a:\n  QUUX r1, r2\n"},
           Case{"huge register index",
                "COMPILE\nblock a:\n  LI r99999999999999999999, 1\n"},
       }) {
    ASSERT_TRUE(client.send_payload(c.payload, &error)) << c.name;
    server::Response resp;
    ASSERT_TRUE(client.receive(&resp, &error)) << c.name << ": " << error;
    EXPECT_FALSE(resp.ok) << c.name;
    EXPECT_FALSE(resp.message.empty()) << c.name;
  }

  // The connection survived every malformed request.
  server::Response resp;
  ASSERT_TRUE(client.call(compile_request(valid_body), &resp, &error))
      << error;
  EXPECT_TRUE(resp.ok) << resp.message;
}

TEST_F(ServerTest, OversizedFrameGetsErrorReplyThenClose) {
  StartServer("oversized", [](server::ServerOptions& options) {
    options.max_frame_bytes = 4096;
  });
  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;
  ASSERT_TRUE(client.send_payload(std::string(8192, 'x'), &error)) << error;
  server::Response resp;
  ASSERT_TRUE(client.receive(&resp, &error)) << error;
  EXPECT_FALSE(resp.ok);
  // The declared frame length is unrecoverable — the server closes after
  // the error reply.
  EXPECT_FALSE(client.receive(&resp, &error));

  // A fresh connection still works.
  server::Client again;
  ASSERT_TRUE(again.connect(socket_path_, &error)) << error;
  ASSERT_TRUE(again.call(compile_request("block a:\n  LI r1, 1\n"), &resp,
                         &error))
      << error;
  EXPECT_TRUE(resp.ok) << resp.message;
}

TEST_F(ServerTest, PingAndMetricsVerbs) {
  StartServer("verbs");
  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;

  server::Request ping;
  ping.verb = server::kVerbPing;
  server::Response resp;
  ASSERT_TRUE(client.call(ping, &resp, &error)) << error;
  EXPECT_TRUE(resp.ok);

  // One compile so the request histogram is non-empty.
  ASSERT_TRUE(client.call(compile_request("block a:\n  LI r1, 1\n"), &resp,
                          &error))
      << error;
  ASSERT_TRUE(resp.ok) << resp.message;

  server::Request metrics;
  metrics.verb = server::kVerbMetrics;
  ASSERT_TRUE(client.call(metrics, &resp, &error)) << error;
  ASSERT_TRUE(resp.ok);
  EXPECT_NE(resp.diag_text.find("server_request_us"), std::string::npos);
  EXPECT_NE(resp.diag_text.find("server_requests_total"), std::string::npos);
}

// --- graceful shutdown drains in-flight work ------------------------------

TEST_F(ServerTest, ShutdownVerbDrainsAdmittedRequests) {
  StartServer("drain");
  const std::vector<std::string> bodies = make_bodies(8, 3, 10, 29);

  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;

  // Pipeline a burst of compiles, then SHUTDOWN on the same connection:
  // the reader admits frames in order, so every compile is enqueued before
  // the shutdown is processed and the drain must answer all of them.
  const std::size_t burst = 64;
  for (std::size_t i = 0; i < burst; ++i) {
    server::Request req = compile_request(bodies[i % bodies.size()]);
    req.options["id"] = std::to_string(i);
    ASSERT_TRUE(client.send(req, &error)) << error;
  }
  server::Request shutdown;
  shutdown.verb = server::kVerbShutdown;
  ASSERT_TRUE(client.send(shutdown, &error)) << error;

  std::size_t compile_replies = 0;
  std::size_t shutdown_replies = 0;
  for (std::size_t i = 0; i < burst + 1; ++i) {
    server::Response resp;
    ASSERT_TRUE(client.receive(&resp, &error)) << error;
    EXPECT_TRUE(resp.ok) << resp.message;
    if (resp.option("id").empty()) {
      ++shutdown_replies;
    } else {
      ++compile_replies;
      EXPECT_FALSE(resp.asm_text.empty());
    }
  }
  EXPECT_EQ(compile_replies, burst);
  EXPECT_EQ(shutdown_replies, 1u);

  server_->wait();  // returns because SHUTDOWN stopped the server
}

// --- the warm cache is shared across tenants ------------------------------

TEST_F(ServerTest, CacheSharedAcrossTenantConnections) {
  StartServer("tenants");
  ScheduleCache::global().set_enabled(true);
  ScheduleCache::global().clear();
  const std::vector<std::string> bodies = make_bodies(12, 3, 10, 41);

  auto compile_all = [&](server::Client& client) {
    std::string error;
    for (const std::string& body : bodies) {
      server::Response resp;
      ASSERT_TRUE(client.call(compile_request(body), &resp, &error)) << error;
      ASSERT_TRUE(resp.ok) << resp.message;
    }
  };

  std::string error;
  server::Client tenant_a;
  ASSERT_TRUE(tenant_a.connect(socket_path_, &error)) << error;
  compile_all(tenant_a);

  // Tenant B, a separate connection, re-compiles the same bodies: every
  // request must be served from the cache tenant A warmed.
  const std::uint64_t hits_before = counter_total(obs::ctr::kCacheHits);
  server::Client tenant_b;
  ASSERT_TRUE(tenant_b.connect(socket_path_, &error)) << error;
  compile_all(tenant_b);
  const std::uint64_t hits_after = counter_total(obs::ctr::kCacheHits);
  EXPECT_GE(hits_after - hits_before, bodies.size());
}

// --- QoS admission queue (fake clock) -------------------------------------

TEST(AdmissionQueue, ServesPriorityLevelsFifoWithinLevel) {
  server::AdmissionQueue<int> q{server::AdmissionOptions{}};
  std::int64_t t = 0;
  q.push(1, server::Priority::kBulk, "t", t);
  q.push(2, server::Priority::kNormal, "t", t);
  q.push(3, server::Priority::kInteractive, "t", t);
  q.push(4, server::Priority::kInteractive, "t", t);
  q.push(5, server::Priority::kBulk, "t", t);
  int out = 0;
  std::vector<int> order;
  while (q.pop(t, &out)) order.push_back(out);
  EXPECT_EQ(order, (std::vector<int>{3, 4, 2, 1, 5}));
}

TEST(AdmissionQueue, QosOffDegradesToFifo) {
  server::AdmissionOptions opts;
  opts.qos = false;
  opts.quotas.push_back({"t", 0.001});  // ignored without qos
  server::AdmissionQueue<int> q{opts};
  for (int i = 0; i < 4; ++i) {
    const auto prio = i % 2 == 0 ? server::Priority::kBulk
                                 : server::Priority::kInteractive;
    EXPECT_FALSE(q.push(i, prio, "t", 0));  // never deferred
  }
  int out = 0;
  std::vector<int> order;
  while (q.pop(0, &out)) order.push_back(out);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(AdmissionQueue, OverQuotaDeferredBehindInQuotaNeverDropped) {
  server::AdmissionOptions opts;
  opts.quotas.push_back({"limited", 1.0});  // burst 1: one token at t0
  server::AdmissionQueue<int> q{opts};
  std::int64_t t = 0;
  EXPECT_FALSE(q.push(1, server::Priority::kInteractive, "limited", t));
  EXPECT_TRUE(q.push(2, server::Priority::kInteractive, "limited", t));
  EXPECT_TRUE(q.push(3, server::Priority::kInteractive, "limited", t));
  // A lower-priority in-quota tenant still runs before the deferred
  // higher-priority over-quota work.
  EXPECT_FALSE(q.push(4, server::Priority::kBulk, "free", t));
  EXPECT_EQ(q.size(), 4u);
  int out = 0;
  std::vector<int> order;
  while (q.pop(t, &out)) order.push_back(out);
  // 1 (in-quota), 4 (in-quota bulk), then the deferred items via work
  // conservation, FIFO — nothing dropped.
  EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 3}));
  EXPECT_EQ(q.stats().deferred, 2u);
  EXPECT_EQ(q.stats().conserved, 2u);
}

TEST(AdmissionQueue, TokenRefillRedeemsDeferredWork) {
  server::AdmissionOptions opts;
  opts.quotas.push_back({"limited", 1.0});
  opts.defer_max_us = 10'000'000;  // keep force-admission out of this test
  server::AdmissionQueue<int> q{opts};
  std::int64_t t = 0;
  q.push(1, server::Priority::kNormal, "limited", t);   // takes the token
  q.push(2, server::Priority::kNormal, "limited", t);   // deferred
  q.push(3, server::Priority::kBulk, "free", t);
  int out = 0;
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 1);
  // One second later the bucket has a token again: the deferred normal
  // item redeems into its level and beats the bulk work.
  t += 1'000'000;
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.stats().redeemed, 1u);
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 3);
}

TEST(AdmissionQueue, DeferredWorkForceAdmittedPastDeferMax) {
  server::AdmissionOptions opts;
  opts.quotas.push_back({"limited", 0.0001});  // effectively never refills
  opts.defer_max_us = 200'000;
  server::AdmissionQueue<int> q{opts};
  std::int64_t t = 0;
  q.push(1, server::Priority::kNormal, "limited", t);
  q.push(2, server::Priority::kNormal, "limited", t);  // deferred, ~forever
  q.push(3, server::Priority::kNormal, "free", t);
  int out = 0;
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 1);
  // Before defer_max the in-quota tenant keeps winning...
  t += 100'000;
  q.push(4, server::Priority::kNormal, "free", t);
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(q.stats().force_admitted, 0u);
  // ...but past defer_max the deferred item is force-admitted into its
  // level — behind in-quota work already queued, ahead of later arrivals —
  // even though its bucket still has no token.
  t += 150'000;
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 4);
  EXPECT_EQ(q.stats().force_admitted, 1u);
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 2);
}

TEST(AdmissionQueue, AgingPromotesBulkPastFreshInteractive) {
  server::AdmissionOptions opts;
  opts.age_promote_us = 50'000;
  server::AdmissionQueue<int> q{opts};
  std::int64_t t = 0;
  q.push(1, server::Priority::kBulk, "t", t);
  // At t1 the bulk item has aged one step (bulk -> normal); a concurrent
  // interactive request still wins.
  t += 50'000;
  q.push(2, server::Priority::kInteractive, "t", t);
  int out = 0;
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 2);
  // At t2 it reaches the interactive level and runs ahead of interactive
  // work arriving after the promotion — bulk is delayed, never starved.
  t += 50'000;
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.stats().promoted, 2u);
  q.push(3, server::Priority::kInteractive, "t", t);
  ASSERT_TRUE(q.pop(t, &out));
  EXPECT_EQ(out, 3);
}

TEST(AdmissionQueue, RequeueFrontKeepsPlaceAndChargesNoToken) {
  server::AdmissionOptions opts;
  opts.quotas.push_back({"limited", 1.0});  // burst 1: one token at t0
  server::AdmissionQueue<int> q{opts};
  std::int64_t t = 0;
  q.push(1, server::Priority::kBulk, "limited", t);  // takes the token
  q.push(2, server::Priority::kBulk, "free", t);
  int out = 0;
  server::Priority served = server::Priority::kNormal;
  ASSERT_TRUE(q.pop(t, &out, &served));
  EXPECT_EQ(out, 1);
  // The dispatcher hands 1 back (interactive work arrived downstream):
  // it re-enters at the FRONT of its level — ahead of 2 — and pays no
  // second quota token (its bucket is empty; a push would defer).
  q.requeue_front(out, served, t);
  EXPECT_EQ(q.stats().requeued, 1u);
  q.push(3, server::Priority::kInteractive, "free", t);
  std::vector<int> order;
  while (q.pop(t, &out)) order.push_back(out);
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
  EXPECT_EQ(q.stats().deferred, 0u);
}

TEST(AdmissionQueue, ParsersValidateWireValues) {
  server::Priority p;
  EXPECT_TRUE(server::parse_priority("interactive", &p));
  EXPECT_EQ(p, server::Priority::kInteractive);
  EXPECT_TRUE(server::parse_priority("", &p));
  EXPECT_EQ(p, server::Priority::kNormal);
  EXPECT_TRUE(server::parse_priority("2", &p));
  EXPECT_EQ(p, server::Priority::kBulk);
  EXPECT_FALSE(server::parse_priority("urgent", &p));
  EXPECT_FALSE(server::parse_priority("-1", &p));

  EXPECT_TRUE(server::valid_tenant(""));
  EXPECT_TRUE(server::valid_tenant("team-a.prod_7"));
  EXPECT_FALSE(server::valid_tenant("has space"));
  EXPECT_FALSE(server::valid_tenant(std::string(65, 'x')));

  std::vector<server::TenantQuota> quotas;
  std::string error;
  EXPECT_TRUE(server::parse_quota_list("a=5,b=0.5", &quotas, &error));
  ASSERT_EQ(quotas.size(), 2u);
  EXPECT_EQ(quotas[0].tenant, "a");
  EXPECT_DOUBLE_EQ(quotas[0].rps, 5.0);
  EXPECT_DOUBLE_EQ(quotas[1].rps, 0.5);
  EXPECT_FALSE(server::parse_quota_list("a", &quotas, &error));
  EXPECT_FALSE(server::parse_quota_list("a=x", &quotas, &error));
  EXPECT_FALSE(server::parse_quota_list("bad tenant=1", &quotas, &error));
}

// --- QoS options on the wire ----------------------------------------------

TEST_F(ServerTest, UnknownPriorityOrTenantGetsErrorReplyNotCrash) {
  StartServer("qosopts");
  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;
  const std::string body = "block a:\n  LI r1, 1\n";

  server::Request req = compile_request(body);
  req.options["priority"] = "urgent";
  server::Response resp;
  ASSERT_TRUE(client.call(req, &resp, &error)) << error;
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.message.find("priority"), std::string::npos);

  req = compile_request(body);
  req.options["tenant"] = "no/slashes!";
  ASSERT_TRUE(client.call(req, &resp, &error)) << error;
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.message.find("tenant"), std::string::npos);

  // The id echo survives rejection, and the connection stays usable with
  // valid QoS options.
  req = compile_request(body);
  req.options["priority"] = "warp9";
  req.options["id"] = "42";
  ASSERT_TRUE(client.call(req, &resp, &error)) << error;
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.message.find("(id=42)"), std::string::npos);

  req = compile_request(body);
  req.options["priority"] = "bulk";
  req.options["tenant"] = "team-a";
  ASSERT_TRUE(client.call(req, &resp, &error)) << error;
  EXPECT_TRUE(resp.ok) << resp.message;
}

TEST_F(ServerTest, OverQuotaRequestsDeferredNotDropped) {
  StartServer("quota", [](server::ServerOptions& options) {
    options.admission.quotas.push_back({"metered", 1.0});
    options.admission.defer_max_us = 50'000;
  });
  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;

  // Pipeline far more requests than the 1 rps quota admits: every one must
  // still be answered (deferred, force-admitted or work-conserved — never
  // dropped).
  const std::size_t burst = 24;
  const std::string body = "block a:\n  LI r1, 1\n  ADD r2, r1, r1\n";
  for (std::size_t i = 0; i < burst; ++i) {
    server::Request req = compile_request(body);
    req.options["tenant"] = "metered";
    req.options["priority"] = "normal";
    req.options["id"] = std::to_string(i);
    ASSERT_TRUE(client.send(req, &error)) << error;
  }
  std::vector<bool> seen(burst, false);
  for (std::size_t i = 0; i < burst; ++i) {
    server::Response resp;
    ASSERT_TRUE(client.receive(&resp, &error)) << error;
    EXPECT_TRUE(resp.ok) << resp.message;
    const std::string id(resp.option("id"));
    ASSERT_FALSE(id.empty());
    seen[static_cast<std::size_t>(std::stoul(id))] = true;
  }
  for (std::size_t i = 0; i < burst; ++i) {
    EXPECT_TRUE(seen[i]) << "reply for request " << i << " missing";
  }
}

// --- TCP transport robustness ---------------------------------------------

/// Connects a raw TCP socket to "127.0.0.1:<port>" — the tests that need
/// byte-level control the Client wrapper does not expose.
int raw_tcp_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST_F(ServerTest, ReassemblesFramesSplitAcrossTcpSegments) {
  StartServer("segments", [](server::ServerOptions& options) {
    options.tcp_addr = "127.0.0.1:0";
  });
  const std::string body = "block a:\n  LI r1, 1\n  ADD r2, r1, r1\n";
  server::CompileOptions ref_options;
  ref_options.window = 2;
  const server::Response reference = serial_reference(body, ref_options);
  ASSERT_TRUE(reference.ok) << reference.message;

  server::Request req = compile_request(body);
  std::string wire;
  server::append_frame(wire, req.encode());

  const int fd = raw_tcp_connect(server_->tcp_port());
  ASSERT_GE(fd, 0);
  // Dribble the frame a few bytes per send with TCP_NODELAY, so the length
  // prefix itself — let alone the payload — spans several segments.
  for (std::size_t off = 0; off < wire.size(); off += 3) {
    const std::size_t n = std::min<std::size_t>(3, wire.size() - off);
    ASSERT_EQ(::send(fd, wire.data() + off, n, 0),
              static_cast<ssize_t>(n));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string buffer;
  std::string payload;
  char chunk[4096];
  while (server::take_frame(buffer, 1 << 20, &payload) !=
         server::FrameStatus::kFrame) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server::Response resp;
  std::string error;
  ASSERT_TRUE(server::parse_response(payload, &resp, &error)) << error;
  ASSERT_TRUE(resp.ok) << resp.message;
  EXPECT_EQ(resp.asm_text, reference.asm_text);
}

TEST_F(ServerTest, ReadDeadlineCutsStalledPeerButSparesIdleConnection) {
  StartServer("deadline", [](server::ServerOptions& options) {
    options.tcp_addr = "127.0.0.1:0";
    options.read_deadline_ms = 100;
  });
  std::string error;

  // An idle connection (no partial frame pending) outlives the deadline.
  server::Client idle;
  ASSERT_TRUE(idle.connect_tcp(tcp_target_, &error)) << error;

  // A peer that stalls mid-frame is disconnected once the deadline passes.
  const int fd = raw_tcp_connect(server_->tcp_port());
  ASSERT_GE(fd, 0);
  const std::uint32_t claimed = 4096;  // promise 4 KiB, deliver 8 bytes
  char partial[sizeof(claimed) + 8];
  std::memcpy(partial, &claimed, sizeof(claimed));
  std::memset(partial + sizeof(claimed), 'x', 8);
  ASSERT_EQ(::send(fd, partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  char chunk[64];
  const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);  // blocks until cut
  EXPECT_EQ(n, 0) << "server should close a peer stalled mid-frame";
  ::close(fd);

  // The idle connection is still serviceable well past the deadline.
  server::Response resp;
  ASSERT_TRUE(idle.call(compile_request("block a:\n  LI r1, 1\n"), &resp,
                        &error))
      << error;
  EXPECT_TRUE(resp.ok) << resp.message;
}

}  // namespace
}  // namespace ais
