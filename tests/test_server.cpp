// aisd server tests: the framed protocol round-trips, concurrent clients
// get byte-identical answers to a serial offline compile (assembly,
// diagnostics and non-cache counter streams), malformed and oversized
// frames turn into error replies instead of crashes, graceful shutdown
// drains every admitted request, and the warm cache is shared across
// tenant connections.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/schedule_cache.hpp"
#include "ir/instruction.hpp"
#include "obs/obs.hpp"
#include "server/client.hpp"
#include "server/compile_service.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/prng.hpp"
#include "workloads/random_ir.hpp"

#ifndef AISC_BINARY
#error "AISC_BINARY must point at the aisc executable"
#endif
#ifndef AIS_EXAMPLES_DIR
#error "AIS_EXAMPLES_DIR must point at the shipped examples/"
#endif

namespace ais {
namespace {

std::string unique_socket_path(const char* tag) {
  static std::atomic<int> seq{0};
  return ::testing::TempDir() + "/aisd_" + tag + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(seq.fetch_add(1)) + ".sock";
}

std::string render_trace(const Trace& trace) {
  std::string text;
  for (const BasicBlock& bb : trace.blocks) {
    text += "block " + bb.label + ":\n";
    for (const Instruction& inst : bb.insts) {
      text += "  " + inst.to_string() + "\n";
    }
  }
  return text;
}

std::vector<std::string> make_bodies(std::size_t count, int blocks,
                                     int insts, std::uint64_t seed) {
  Prng prng(seed);
  RandomIrParams params;
  params.num_insts = insts;
  std::vector<std::string> bodies;
  bodies.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bodies.push_back(render_trace(random_ir_trace(prng, params, blocks)));
  }
  return bodies;
}

/// The serial offline reference for one body: compile_ir with the schedule
/// cache bypassed — exactly what a cold, single-request aisc run computes.
server::Response serial_reference(const std::string& body,
                                  const server::CompileOptions& options) {
  ScheduleCache::ScopedBypass bypass;
  server::WorkerScratch scratch;
  server::Response reply;
  server::compile_ir(body, options, scratch, &reply);
  return reply;
}

std::uint64_t counter_total(const char* name) {
  for (const auto& [counter, value] : obs::counters_snapshot()) {
    if (counter == name) return value;
  }
  return 0;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(const char* tag,
                   const std::function<void(server::ServerOptions&)>& tweak =
                       nullptr) {
    server::ServerOptions options;
    options.socket_path = unique_socket_path(tag);
    options.threads = 4;
    if (tweak) tweak(options);
    server_ = std::make_unique<server::Server>(options);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    socket_path_ = options.socket_path;
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  server::Request compile_request(const std::string& body,
                                  bool profile = false,
                                  bool verify = false) const {
    server::Request req;
    req.verb = server::kVerbCompile;
    req.options["mode"] = "trace";
    req.options["machine"] = "rs6000";
    req.options["window"] = "2";
    if (profile) req.options["profile"] = "1";
    if (verify) req.options["verify"] = "1";
    req.body = body;
    return req;
  }

  std::unique_ptr<server::Server> server_;
  std::string socket_path_;
};

// --- protocol unit tests --------------------------------------------------

TEST(ServerProtocol, FrameRoundTrip) {
  std::string wire;
  server::append_frame(wire, "hello");
  server::append_frame(wire, "");
  std::string payload;
  ASSERT_EQ(server::take_frame(wire, 1 << 20, &payload),
            server::FrameStatus::kFrame);
  EXPECT_EQ(payload, "hello");
  ASSERT_EQ(server::take_frame(wire, 1 << 20, &payload),
            server::FrameStatus::kFrame);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(server::take_frame(wire, 1 << 20, &payload),
            server::FrameStatus::kNeedMore);
}

TEST(ServerProtocol, OversizedFrameDetected) {
  std::string wire;
  server::append_frame(wire, std::string(4096, 'x'));
  std::string payload;
  EXPECT_EQ(server::take_frame(wire, 1024, &payload),
            server::FrameStatus::kOversized);
}

TEST(ServerProtocol, RequestRoundTrip) {
  server::Request req;
  req.verb = server::kVerbCompile;
  req.options["mode"] = "trace";
  req.options["window"] = "4";
  req.body = "block a:\n  LI r1, 0\n";
  server::Request parsed;
  std::string error;
  ASSERT_TRUE(server::parse_request(req.encode(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.verb, req.verb);
  EXPECT_EQ(parsed.options, req.options);
  EXPECT_EQ(parsed.body, req.body);
}

TEST(ServerProtocol, ResponseRoundTrip) {
  server::Response resp;
  resp.ok = true;
  resp.options["id"] = "7";
  resp.asm_text = "block a:\n  LI r1, 0\n";
  resp.diag_text = "verify: ok\n";
  resp.counters.emplace_back("rank.sessions", 3);
  server::Response parsed;
  std::string error;
  ASSERT_TRUE(server::parse_response(resp.encode(), &parsed, &error))
      << error;
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.option("id"), "7");
  EXPECT_EQ(parsed.asm_text, resp.asm_text);
  EXPECT_EQ(parsed.diag_text, resp.diag_text);
  EXPECT_EQ(parsed.counters, resp.counters);
}

// --- differential: concurrent server vs serial offline compile ------------

TEST_F(ServerTest, ByteIdenticalAcrossConcurrencyLevels) {
  StartServer("diff");
  const std::vector<std::string> bodies = make_bodies(24, 3, 10, 17);

  server::CompileOptions ref_options;
  ref_options.mode = "trace";
  ref_options.machine = "rs6000";
  ref_options.window = 2;
  ref_options.profile = true;
  ref_options.verify = true;
  std::vector<server::Response> reference;
  reference.reserve(bodies.size());
  for (const std::string& body : bodies) {
    reference.push_back(serial_reference(body, ref_options));
    ASSERT_TRUE(reference.back().ok) << reference.back().message;
  }

  for (const std::size_t clients : {std::size_t{1}, std::size_t{8},
                                    std::size_t{32}}) {
    const std::size_t per_client = 12;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        server::Client client;
        std::string error;
        if (!client.connect(socket_path_, &error)) {
          ADD_FAILURE() << error;
          failures.fetch_add(1);
          return;
        }
        for (std::size_t i = 0; i < per_client; ++i) {
          const std::size_t which = (c * per_client + i) % bodies.size();
          const server::Request req =
              compile_request(bodies[which], /*profile=*/true,
                              /*verify=*/true);
          server::Response resp;
          if (!client.call(req, &resp, &error)) {
            ADD_FAILURE() << error;
            failures.fetch_add(1);
            return;
          }
          const server::Response& ref = reference[which];
          if (!resp.ok || resp.asm_text != ref.asm_text ||
              resp.diag_text != ref.diag_text ||
              resp.counters != ref.counters ||
              resp.option("verified") != ref.option("verified")) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0)
        << "divergence from serial reference at " << clients << " clients";
  }
}

TEST_F(ServerTest, MatchesOfflineAiscBinary) {
  StartServer("aisc");
  struct Case {
    const char* file;
    const char* mode;
  };
  for (const Case& c : {Case{"two_block_trace.s", "trace"},
                        Case{"memory_alias.s", "trace"},
                        Case{"fig3_loop.s", "loop"},
                        Case{"diamond_cfg.s", "cfg"}}) {
    const std::string path = std::string(AIS_EXAMPLES_DIR) + "/" + c.file;
    const std::string out_path = ::testing::TempDir() + "/aisc_ref.txt";
    const std::string cmd = std::string(AISC_BINARY) + " --in " + path +
                            " --mode " + c.mode +
                            " --machine rs6000 --window 2 > " + out_path +
                            " 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    server::Client client;
    std::string error;
    ASSERT_TRUE(client.connect(socket_path_, &error)) << error;
    server::Request req;
    req.verb = server::kVerbCompile;
    req.options["mode"] = c.mode;
    req.options["machine"] = "rs6000";
    req.options["window"] = "2";
    req.body = slurp(path);
    server::Response resp;
    ASSERT_TRUE(client.call(req, &resp, &error)) << error;
    ASSERT_TRUE(resp.ok) << resp.message;
    EXPECT_EQ(resp.asm_text, slurp(out_path)) << c.file;
  }
}

// --- robustness -----------------------------------------------------------

TEST_F(ServerTest, MalformedRequestsGetErrorRepliesNotCrashes) {
  StartServer("malformed");
  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;

  struct Case {
    const char* name;
    std::string payload;
  };
  const std::string valid_body = "block a:\n  LI r1, 1\n  ADD r2, r1, r1\n";
  for (const Case& c : {
           Case{"empty payload", ""},
           Case{"unknown verb", "FROBNICATE\n"},
           Case{"bad option token", "COMPILE modetrace\n" + valid_body},
           Case{"unknown option", "COMPILE wibble=1\n" + valid_body},
           Case{"unknown machine", "COMPILE machine=pdp11\n" + valid_body},
           Case{"unknown mode", "COMPILE mode=warp\n" + valid_body},
           Case{"negative window", "COMPILE window=-3\n" + valid_body},
           Case{"unparseable window", "COMPILE window=banana\n" + valid_body},
           Case{"empty program", "COMPILE mode=trace\n"},
           Case{"garbage program", "COMPILE mode=trace\nLI LI LI\n"},
           Case{"bad opcode", "COMPILE\nblock a:\n  QUUX r1, r2\n"},
           Case{"huge register index",
                "COMPILE\nblock a:\n  LI r99999999999999999999, 1\n"},
       }) {
    ASSERT_TRUE(client.send_payload(c.payload, &error)) << c.name;
    server::Response resp;
    ASSERT_TRUE(client.receive(&resp, &error)) << c.name << ": " << error;
    EXPECT_FALSE(resp.ok) << c.name;
    EXPECT_FALSE(resp.message.empty()) << c.name;
  }

  // The connection survived every malformed request.
  server::Response resp;
  ASSERT_TRUE(client.call(compile_request(valid_body), &resp, &error))
      << error;
  EXPECT_TRUE(resp.ok) << resp.message;
}

TEST_F(ServerTest, OversizedFrameGetsErrorReplyThenClose) {
  StartServer("oversized", [](server::ServerOptions& options) {
    options.max_frame_bytes = 4096;
  });
  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;
  ASSERT_TRUE(client.send_payload(std::string(8192, 'x'), &error)) << error;
  server::Response resp;
  ASSERT_TRUE(client.receive(&resp, &error)) << error;
  EXPECT_FALSE(resp.ok);
  // The declared frame length is unrecoverable — the server closes after
  // the error reply.
  EXPECT_FALSE(client.receive(&resp, &error));

  // A fresh connection still works.
  server::Client again;
  ASSERT_TRUE(again.connect(socket_path_, &error)) << error;
  ASSERT_TRUE(again.call(compile_request("block a:\n  LI r1, 1\n"), &resp,
                         &error))
      << error;
  EXPECT_TRUE(resp.ok) << resp.message;
}

TEST_F(ServerTest, PingAndMetricsVerbs) {
  StartServer("verbs");
  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;

  server::Request ping;
  ping.verb = server::kVerbPing;
  server::Response resp;
  ASSERT_TRUE(client.call(ping, &resp, &error)) << error;
  EXPECT_TRUE(resp.ok);

  // One compile so the request histogram is non-empty.
  ASSERT_TRUE(client.call(compile_request("block a:\n  LI r1, 1\n"), &resp,
                          &error))
      << error;
  ASSERT_TRUE(resp.ok) << resp.message;

  server::Request metrics;
  metrics.verb = server::kVerbMetrics;
  ASSERT_TRUE(client.call(metrics, &resp, &error)) << error;
  ASSERT_TRUE(resp.ok);
  EXPECT_NE(resp.diag_text.find("server_request_us"), std::string::npos);
  EXPECT_NE(resp.diag_text.find("server_requests_total"), std::string::npos);
}

// --- graceful shutdown drains in-flight work ------------------------------

TEST_F(ServerTest, ShutdownVerbDrainsAdmittedRequests) {
  StartServer("drain");
  const std::vector<std::string> bodies = make_bodies(8, 3, 10, 29);

  server::Client client;
  std::string error;
  ASSERT_TRUE(client.connect(socket_path_, &error)) << error;

  // Pipeline a burst of compiles, then SHUTDOWN on the same connection:
  // the reader admits frames in order, so every compile is enqueued before
  // the shutdown is processed and the drain must answer all of them.
  const std::size_t burst = 64;
  for (std::size_t i = 0; i < burst; ++i) {
    server::Request req = compile_request(bodies[i % bodies.size()]);
    req.options["id"] = std::to_string(i);
    ASSERT_TRUE(client.send(req, &error)) << error;
  }
  server::Request shutdown;
  shutdown.verb = server::kVerbShutdown;
  ASSERT_TRUE(client.send(shutdown, &error)) << error;

  std::size_t compile_replies = 0;
  std::size_t shutdown_replies = 0;
  for (std::size_t i = 0; i < burst + 1; ++i) {
    server::Response resp;
    ASSERT_TRUE(client.receive(&resp, &error)) << error;
    EXPECT_TRUE(resp.ok) << resp.message;
    if (resp.option("id").empty()) {
      ++shutdown_replies;
    } else {
      ++compile_replies;
      EXPECT_FALSE(resp.asm_text.empty());
    }
  }
  EXPECT_EQ(compile_replies, burst);
  EXPECT_EQ(shutdown_replies, 1u);

  server_->wait();  // returns because SHUTDOWN stopped the server
}

// --- the warm cache is shared across tenants ------------------------------

TEST_F(ServerTest, CacheSharedAcrossTenantConnections) {
  StartServer("tenants");
  ScheduleCache::global().set_enabled(true);
  ScheduleCache::global().clear();
  const std::vector<std::string> bodies = make_bodies(12, 3, 10, 41);

  auto compile_all = [&](server::Client& client) {
    std::string error;
    for (const std::string& body : bodies) {
      server::Response resp;
      ASSERT_TRUE(client.call(compile_request(body), &resp, &error)) << error;
      ASSERT_TRUE(resp.ok) << resp.message;
    }
  };

  std::string error;
  server::Client tenant_a;
  ASSERT_TRUE(tenant_a.connect(socket_path_, &error)) << error;
  compile_all(tenant_a);

  // Tenant B, a separate connection, re-compiles the same bodies: every
  // request must be served from the cache tenant A warmed.
  const std::uint64_t hits_before = counter_total(obs::ctr::kCacheHits);
  server::Client tenant_b;
  ASSERT_TRUE(tenant_b.connect(socket_path_, &error)) << error;
  compile_all(tenant_b);
  const std::uint64_t hits_after = counter_total(obs::ctr::kCacheHits);
  EXPECT_GE(hits_after - hits_before, bodies.size());
}

}  // namespace
}  // namespace ais
