// Tests for the Rank Algorithm: golden values from the paper, unit
// behaviours, and the optimality property (= brute force) on random
// instances of the restricted case.
#include <gtest/gtest.h>

#include "baselines/bruteforce.hpp"
#include "core/rank.hpp"
#include "graph/critpath.hpp"
#include "machine/machine_model.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

TEST(Rank, Fig1GoldenRanks) {
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  bool ok = false;
  const auto rank =
      scheduler.compute_ranks(all, uniform_deadlines(g, 100), {}, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(rank[g.find("x")], 95);
  EXPECT_EQ(rank[g.find("e")], 95);
  EXPECT_EQ(rank[g.find("w")], 98);
  EXPECT_EQ(rank[g.find("b")], 98);
  EXPECT_EQ(rank[g.find("r")], 100);
  EXPECT_EQ(rank[g.find("a")], 100);
}

TEST(Rank, Fig2MergedGoldenRanks) {
  const DepGraph g = fig2_trace();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  bool ok = false;
  const auto rank =
      scheduler.compute_ranks(all, uniform_deadlines(g, 100), {}, &ok);
  EXPECT_TRUE(ok);
  // "rank(g)=rank(v)=rank(a)=rank(r)=100, rank(p)=rank(b)=98, rank(q)=97,
  //  rank(z)=95, rank(w)=93, rank(e)=91, rank(x)=90."
  EXPECT_EQ(rank[g.find("g")], 100);
  EXPECT_EQ(rank[g.find("v")], 100);
  EXPECT_EQ(rank[g.find("a")], 100);
  EXPECT_EQ(rank[g.find("r")], 100);
  EXPECT_EQ(rank[g.find("p")], 98);
  EXPECT_EQ(rank[g.find("b")], 98);
  EXPECT_EQ(rank[g.find("q")], 97);
  EXPECT_EQ(rank[g.find("z")], 95);
  EXPECT_EQ(rank[g.find("w")], 93);
  EXPECT_EQ(rank[g.find("e")], 91);
  EXPECT_EQ(rank[g.find("x")], 90);
}

TEST(Rank, Fig2MergedScheduleMatchesPaper) {
  const DepGraph g = fig2_trace();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  const RankResult r = scheduler.run(all, uniform_deadlines(g, 100), {});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.makespan, 11);
  // Paper's schedule: x e r w b z a q p v g.
  const char* expected[] = {"x", "e", "r", "w", "b", "z", "a", "q", "p", "v",
                            "g"};
  const auto perm = r.schedule.permutation();
  ASSERT_EQ(perm.size(), 11u);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(g.node(perm[i]).name, expected[i]) << "position " << i;
  }
}

TEST(Rank, GreedyFromListRespectsOrderingSemantics) {
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  // Source order x,e,w,b,r,a: at t=2 nothing is ready (w,b need e+1) except
  // r; greedy must pick r even though w is earlier in the list.
  const Schedule s = scheduler.greedy_from_list(
      all, {g.find("x"), g.find("e"), g.find("w"), g.find("b"), g.find("r"),
            g.find("a")});
  EXPECT_EQ(s.start(g.find("r")), 2);
  EXPECT_EQ(s.makespan(), 7);
  EXPECT_EQ(validate_schedule(s, scalar01()), "");
}

TEST(Rank, InfeasibleDeadlineDetected) {
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  DeadlineMap d = uniform_deadlines(g, 100);
  d[g.find("a")] = 3;  // a needs two latency-1 levels before it
  const RankResult r = scheduler.run(all, d, {});
  EXPECT_FALSE(r.feasible);
}

TEST(Rank, MinimumTardinessMeetsTightButFeasibleDeadlines) {
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  DeadlineMap d = uniform_deadlines(g, 7);  // exactly the optimal makespan
  const RankResult r = scheduler.run(all, d, {});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.makespan, 7);
}

TEST(Rank, SubsetScheduling) {
  const DepGraph g = fig2_trace();
  const RankScheduler scheduler(g, scalar01());
  // Schedule only BB2 = {z, q, p, v, g}.
  NodeSet bb2(g.num_nodes());
  for (const char* name : {"z", "q", "p", "v", "g"}) {
    bb2.insert(g.find(name));
  }
  const RankResult r =
      scheduler.run(bb2, uniform_deadlines(g, 100), {});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.makespan, 6);  // z . q p v g
}

TEST(Rank, EmptyishSingleNode) {
  DepGraph g;
  g.add_node("only");
  const RankScheduler scheduler(g, scalar01());
  const RankResult r =
      scheduler.run(NodeSet::all(1), uniform_deadlines(g, 100), {});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.makespan, 1);
}

TEST(Rank, TieBreakControlsEqualRanks) {
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  RankOptions opts;
  opts.tie_break.assign(g.num_nodes(), 0);
  opts.tie_break[g.find("e")] = -1;
  const RankResult r = scheduler.run(all, uniform_deadlines(g, 100), opts);
  EXPECT_EQ(r.schedule.start(g.find("e")), 0);
  const RankResult r2 = scheduler.run(all, uniform_deadlines(g, 100), {});
  EXPECT_EQ(r2.schedule.start(g.find("x")), 0);  // default: id order
  EXPECT_EQ(r.makespan, r2.makespan);
}

TEST(Rank, MakespanNeverBelowCriticalPath) {
  Prng prng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    RandomBlockParams params;
    params.num_nodes = 12;
    params.edge_prob = 0.3;
    const DepGraph g = random_block(prng, params);
    const RankScheduler scheduler(g, scalar01());
    const NodeSet all = NodeSet::all(g.num_nodes());
    const RankResult r =
        scheduler.run(all, uniform_deadlines(g, huge_deadline(g, all)), {});
    EXPECT_TRUE(r.feasible);
    EXPECT_GE(r.makespan, critical_path(g, all));
    EXPECT_GE(r.makespan, static_cast<Time>(g.num_nodes()));
    EXPECT_EQ(validate_schedule(r.schedule, scalar01()), "");
  }
}

// ---- Property: Rank Algorithm is optimal in the restricted case ----------

struct RestrictedCaseParam {
  std::uint64_t seed;
  int nodes;
  double edge_prob;
  double latency1_prob;
};

class RankOptimality : public ::testing::TestWithParam<RestrictedCaseParam> {};

TEST_P(RankOptimality, MatchesBruteForce) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  for (int trial = 0; trial < 12; ++trial) {
    RandomBlockParams params;
    params.num_nodes = p.nodes;
    params.edge_prob = p.edge_prob;
    params.latency1_prob = p.latency1_prob;
    const DepGraph g = random_block(prng, params);
    const RankScheduler scheduler(g, scalar01());
    const NodeSet all = NodeSet::all(g.num_nodes());
    const RankResult r =
        scheduler.run(all, uniform_deadlines(g, huge_deadline(g, all)), {});
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.makespan, optimal_block_makespan(g, all))
        << "seed=" << p.seed << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RestrictedCase, RankOptimality,
    ::testing::Values(RestrictedCaseParam{101, 6, 0.3, 0.5},
                      RestrictedCaseParam{202, 8, 0.25, 0.5},
                      RestrictedCaseParam{303, 8, 0.5, 0.8},
                      RestrictedCaseParam{404, 10, 0.2, 0.3},
                      RestrictedCaseParam{505, 10, 0.35, 1.0},
                      RestrictedCaseParam{606, 12, 0.15, 0.6},
                      RestrictedCaseParam{707, 7, 0.6, 0.9},
                      RestrictedCaseParam{808, 9, 0.1, 0.2}));

// ---- Heuristic regimes stay valid (not necessarily optimal) --------------

struct MachineParam {
  const char* name;
  MachineModel (*make)();
};

class RankHeuristic : public ::testing::TestWithParam<MachineParam> {};

TEST_P(RankHeuristic, ProducesValidSchedules) {
  Prng prng(0xfeed);
  const MachineModel machine = GetParam().make();
  for (int trial = 0; trial < 10; ++trial) {
    const DepGraph g = random_machine_block(prng, machine, 24, 0.2);
    const RankScheduler scheduler(g, machine);
    const NodeSet all = NodeSet::all(g.num_nodes());
    for (const bool split : {false, true}) {
      RankOptions opts;
      opts.split_long_ops = split;
      const RankResult r = scheduler.run(
          all, uniform_deadlines(g, huge_deadline(g, all)), opts);
      EXPECT_TRUE(r.feasible) << GetParam().name;
      EXPECT_EQ(validate_schedule(r.schedule, machine), "")
          << GetParam().name << " split=" << split;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, RankHeuristic,
    ::testing::Values(MachineParam{"rs6000", rs6000_like},
                      MachineParam{"deep", deep_pipeline},
                      MachineParam{"vliw4", vliw4}),
    [](const ::testing::TestParamInfo<MachineParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ais
