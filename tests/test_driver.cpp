// Tests for the facade (driver): IR in, reordered IR out, across machines.
#include <gtest/gtest.h>

#include "driver/anticipatory.hpp"
#include "ir/asm_parser.hpp"
#include "ir/interp.hpp"
#include "machine/machine_model.hpp"
#include "sim/loop_sim.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_ir.hpp"

namespace ais {
namespace {

TEST(DriverTrace, PreservesBlockShapeAndLabels) {
  const Trace trace = sample_trace();
  const ScheduledTrace s = schedule(trace, rs6000_like(), 4);
  ASSERT_EQ(s.blocks.size(), trace.blocks.size());
  for (std::size_t b = 0; b < trace.blocks.size(); ++b) {
    EXPECT_EQ(s.blocks[b].label, trace.blocks[b].label);
    EXPECT_EQ(s.blocks[b].insts.size(), trace.blocks[b].insts.size());
  }
  EXPECT_EQ(s.window, 4);
  EXPECT_GT(s.simulated_cycles(rs6000_like()), 0);
}

TEST(DriverTrace, ZeroWindowUsesMachineDefault) {
  const ScheduledTrace s = schedule(sample_trace(), deep_pipeline());
  EXPECT_EQ(s.window, deep_pipeline().default_window());
}

TEST(DriverTrace, BranchesStayLast) {
  Prng prng(0xd21);
  for (int trial = 0; trial < 10; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 12));
    const Trace trace = random_ir_trace(prng, params, 3);
    const ScheduledTrace s = schedule(trace, scalar01(), 4);
    for (std::size_t b = 0; b < s.blocks.size(); ++b) {
      const auto& insts = s.blocks[b].insts;
      for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].is_branch()) {
          EXPECT_EQ(i, insts.size() - 1);
        }
      }
    }
  }
}

TEST(DriverTrace, SchedulingIsIdempotent) {
  // Scheduling already-scheduled code must not change cycle counts.
  const Trace trace = sample_trace();
  const MachineModel machine = deep_pipeline();
  const ScheduledTrace once = schedule(trace, machine, 2);
  const ScheduledTrace twice = schedule(Trace{once.blocks}, machine, 2);
  EXPECT_EQ(once.simulated_cycles(machine), twice.simulated_cycles(machine));
}

TEST(DriverLoop, SingleBlockUsesCandidateSearch) {
  const ScheduledLoop s =
      schedule(partial_product_kernel(), rs6000_like(), 1);
  ASSERT_EQ(s.blocks.size(), 1u);
  EXPECT_DOUBLE_EQ(s.cycles_per_iteration, 6.0);  // the paper's schedule 2
  // MUL precedes CMP in the anticipatory order.
  int mul_pos = -1;
  int cmp_pos = -1;
  for (std::size_t i = 0; i < s.blocks[0].insts.size(); ++i) {
    if (s.blocks[0].insts[i].op == Opcode::kMul) mul_pos = static_cast<int>(i);
    if (s.blocks[0].insts[i].op == Opcode::kCmp) cmp_pos = static_cast<int>(i);
  }
  EXPECT_LT(mul_pos, cmp_pos);
}

TEST(DriverLoop, MultiBlockBodyUsesWrapAround) {
  const Program prog = parse_program(R"(
    block head:
      LDU r6, x[r7+4]
      MUL r1, r6, r6
      CMP c1, r6, 0
      BT  c1, out
    block tail:
      ADD r2, r1, r6
      STU y[r5+4], r2
      B   head
  )");
  Loop loop;
  loop.body = Trace{prog.blocks};
  const ScheduledLoop s = schedule(loop, rs6000_like(), 2);
  ASSERT_EQ(s.blocks.size(), 2u);
  EXPECT_GT(s.cycles_per_iteration, 0.0);
  EXPECT_EQ(s.blocks[0].insts.size(), 4u);
  EXPECT_EQ(s.blocks[1].insts.size(), 3u);
}

TEST(DriverLoop, SemanticsPreservedOverIterations) {
  Prng prng(0xd22);
  for (int trial = 0; trial < 8; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 9));
    const Loop loop = random_ir_loop(prng, params);
    const ScheduledLoop s = schedule(loop, deep_pipeline(), 2);

    InterpState expected = InterpState::random(trial);
    InterpState got = expected;
    for (int k = 0; k < 3; ++k) {
      expected = run_block(loop.body.blocks[0], expected);
      got = run_block(s.blocks[0], got);
    }
    EXPECT_TRUE(got == expected) << "trial " << trial;
  }
}

TEST(DriverLoop, NeverSlowerThanSourceOrder) {
  Prng prng(0xd23);
  const MachineModel machine = rs6000_like();
  for (int trial = 0; trial < 8; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 9));
    const Loop loop = random_ir_loop(prng, params);
    const int window = static_cast<int>(prng.uniform(1, 5));
    const ScheduledLoop s = schedule(loop, machine, window);

    std::vector<NodeId> source_order;
    for (NodeId id = 0; id < s.graph.num_nodes(); ++id) {
      source_order.push_back(id);
    }
    const double source =
        steady_state_period(s.graph, machine, source_order, window);
    EXPECT_LE(s.cycles_per_iteration, source + 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ais
