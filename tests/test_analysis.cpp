// The static-analysis framework, tested four ways: unit tests of the rule
// registry and runner (filters, severity promotion, exit codes), a seeded
// defect corpus where every rule must fire on exactly its own fixture, a
// clean-corpus property (shipped examples, loop kernels and random IR are
// analysis-clean at default severity), and the --fix safety proof (the
// transitive reduction must leave every example's schedule byte-identical).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/fix.hpp"
#include "analysis/graph_text.hpp"
#include "analysis/sarif.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "support/prng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_ir.hpp"

#ifndef AIS_ANALYSIS_CORPUS_DIR
#error "AIS_ANALYSIS_CORPUS_DIR must point at tests/analysis_corpus"
#endif
#ifndef AIS_EXAMPLES_DIR
#error "AIS_EXAMPLES_DIR must point at the shipped examples/"
#endif

namespace ais {
namespace {

using analysis::AnalysisInput;
using analysis::AnalysisOptions;
using analysis::AnalysisResult;
using analysis::Finding;
using verify::Severity;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

const MachineModel& machine(const std::string& name) {
  const MachineModel* m = machine_preset(name);
  EXPECT_NE(m, nullptr) << name;
  return *m;
}

std::vector<const Finding*> findings_of(const AnalysisResult& result,
                                        const std::string& rule) {
  std::vector<const Finding*> out;
  for (const Finding& f : result.findings) {
    if (f.rule == rule) out.push_back(&f);
  }
  return out;
}

/// Rules (any severity) that produced at least one finding.
std::set<std::string> fired_rules(const AnalysisResult& result) {
  std::set<std::string> out;
  for (const Finding& f : result.findings) out.insert(f.rule);
  return out;
}

std::string dump(const AnalysisResult& result) {
  std::string out;
  for (const Finding& f : result.findings) out += f.to_string() + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Registry and runner.

TEST(Registry, CatalogsEveryRuleWithUniqueIds) {
  const std::vector<analysis::RuleInfo>& rules = analysis::rule_registry();
  EXPECT_GE(rules.size(), 15u);  // 9 legacy lints + dead-def + 5 graph rules
  std::set<std::string> ids;
  for (const analysis::RuleInfo& info : rules) {
    EXPECT_FALSE(info.id.empty());
    EXPECT_FALSE(info.summary.empty());
    EXPECT_TRUE(ids.insert(info.id).second) << "duplicate id " << info.id;
  }
  // The new rules of this framework, beyond the rebased legacy lints.
  for (const char* id : {"dead-def", "dep-cycle", "loop-distance",
                         "latency-mismatch", "redundant-dep-edge",
                         "schedule-advisor"}) {
    EXPECT_TRUE(ids.count(id)) << id;
    EXPECT_NE(analysis::find_rule(id), nullptr) << id;
  }
  EXPECT_EQ(analysis::find_rule("no-such-rule"), nullptr);
}

TEST(Runner, OnlyAndDisabledFiltersSelectRules) {
  std::string error;
  const std::optional<DepGraph> g = analysis::parse_graph_text(
      slurp(std::string(AIS_ANALYSIS_CORPUS_DIR) + "/dep_cycle.dg"), &error);
  ASSERT_TRUE(g.has_value()) << error;
  AnalysisInput input;
  input.graph = &*g;
  input.machine = &machine("rs6000");

  AnalysisOptions only;
  only.only = {"latency-mismatch"};
  const AnalysisResult r1 = analysis::run_analysis(input, only);
  EXPECT_EQ(r1.rules_run, std::vector<std::string>{"latency-mismatch"});
  EXPECT_TRUE(r1.findings.empty()) << dump(r1);

  AnalysisOptions disabled;
  disabled.disabled = {"dep-cycle"};
  const AnalysisResult r2 = analysis::run_analysis(input, disabled);
  EXPECT_TRUE(findings_of(r2, "dep-cycle").empty()) << dump(r2);
  EXPECT_EQ(r2.num_errors, 0u);
}

TEST(Runner, SeverityPromotionAndExitCodes) {
  Program prog = parse_program(slurp(
      std::string(AIS_ANALYSIS_CORPUS_DIR) + "/dead_def.s"));
  const MachineModel& m = machine("rs6000");
  const DepGraph g = build_trace_graph(Trace{prog.blocks}, m);
  AnalysisInput input;
  input.program = &prog;
  input.graph = &g;
  input.machine = &m;

  const AnalysisResult plain = analysis::run_analysis(input, {});
  ASSERT_EQ(findings_of(plain, "dead-def").size(), 1u) << dump(plain);
  EXPECT_EQ(findings_of(plain, "dead-def")[0]->severity, Severity::kWarning);
  EXPECT_EQ(plain.num_errors, 0u);
  EXPECT_TRUE(plain.clean());
  EXPECT_EQ(plain.exit_code(), 0);

  AnalysisOptions all_werror;
  all_werror.warnings_as_errors = true;
  const AnalysisResult promoted = analysis::run_analysis(input, all_werror);
  EXPECT_EQ(findings_of(promoted, "dead-def")[0]->severity, Severity::kError);
  EXPECT_GE(promoted.num_errors, 1u);
  EXPECT_FALSE(promoted.clean());
  EXPECT_EQ(promoted.exit_code(), 1);

  AnalysisOptions one_werror;
  one_werror.werror = {"dead-def"};
  const AnalysisResult one = analysis::run_analysis(input, one_werror);
  EXPECT_EQ(findings_of(one, "dead-def")[0]->severity, Severity::kError);
  // Promotion is per-rule: nothing else may have been upgraded.
  for (const Finding& f : one.findings) {
    if (f.rule != "dead-def") {
      EXPECT_NE(f.severity, Severity::kError);
    }
  }
}

TEST(Runner, SkipsRulesMissingTheirInputs) {
  // Graph-only input: every program rule must be skipped, not silently run.
  std::string error;
  const std::optional<DepGraph> g = analysis::parse_graph_text(
      slurp(std::string(AIS_ANALYSIS_CORPUS_DIR) + "/redundant_edge.dg"),
      &error);
  ASSERT_TRUE(g.has_value()) << error;
  AnalysisInput input;
  input.graph = &*g;
  input.machine = &machine("rs6000");
  const AnalysisResult result = analysis::run_analysis(input, {});
  const std::vector<std::string>& skipped = result.rules_skipped;
  EXPECT_TRUE(std::find(skipped.begin(), skipped.end(), "dead-def") !=
              skipped.end());
  EXPECT_TRUE(std::find(result.rules_run.begin(), result.rules_run.end(),
                        "dep-cycle") != result.rules_run.end());
}

// ---------------------------------------------------------------------------
// The seeded-defect corpus: every rule fires on exactly its own fixture.

struct Fixture {
  const char* file;     // under tests/analysis_corpus/
  const char* rule;     // the one rule that must fire
  const char* machine;  // preset the defect is staged against
  Severity severity;    // expected severity of the finding
};

const Fixture kCorpus[] = {
    {"redundant_edge.dg", "redundant-dep-edge", "rs6000", Severity::kNote},
    {"latency_mismatch.dg", "latency-mismatch", "rs6000", Severity::kError},
    {"dep_cycle.dg", "dep-cycle", "rs6000", Severity::kError},
    {"loop_distance.dg", "loop-distance", "rs6000", Severity::kError},
    {"advisor_gap.dg", "schedule-advisor", "vliw4", Severity::kNote},
    {"dead_def.s", "dead-def", "rs6000", Severity::kWarning},
};

AnalysisResult analyze_fixture(const Fixture& fx, Program* prog_storage,
                               DepGraph* graph_storage) {
  const std::string path =
      std::string(AIS_ANALYSIS_CORPUS_DIR) + "/" + fx.file;
  const MachineModel& m = machine(fx.machine);
  AnalysisInput input;
  input.machine = &m;
  const std::string text = slurp(path);
  if (std::string(fx.file).rfind(".dg") != std::string::npos &&
      std::string(fx.file).size() - 3 ==
          std::string(fx.file).rfind(".dg")) {
    std::string error;
    std::optional<DepGraph> g = analysis::parse_graph_text(text, &error);
    EXPECT_TRUE(g.has_value()) << path << ": " << error;
    *graph_storage = std::move(*g);
  } else {
    *prog_storage = parse_program(text);
    *graph_storage = build_trace_graph(Trace{prog_storage->blocks}, m);
    input.program = prog_storage;
  }
  input.graph = graph_storage;
  return analysis::run_analysis(input, {});
}

TEST(Corpus, EachRuleFiresExactlyOnItsFixture) {
  for (const Fixture& fx : kCorpus) {
    Program prog;
    DepGraph graph;
    const AnalysisResult result = analyze_fixture(fx, &prog, &graph);
    const std::vector<const Finding*> hits = findings_of(result, fx.rule);
    ASSERT_EQ(hits.size(), 1u) << fx.file << ":\n" << dump(result);
    EXPECT_EQ(hits[0]->severity, fx.severity) << fx.file;
    // The defect is staged to trip one rule: nothing else may fire
    // (advisory notes excluded — they are observations, not defects).
    for (const Finding& f : result.findings) {
      if (f.rule == fx.rule) continue;
      EXPECT_EQ(f.severity, Severity::kNote)
          << fx.file << " also fired " << f.to_string();
    }
  }
}

TEST(Corpus, RulesStaySilentOnOtherFixtures) {
  for (const Fixture& fx : kCorpus) {
    Program prog;
    DepGraph graph;
    const AnalysisResult result = analyze_fixture(fx, &prog, &graph);
    const std::set<std::string> fired = fired_rules(result);
    for (const Fixture& other : kCorpus) {
      if (std::string(other.rule) == fx.rule) continue;
      // Error- and warning-severity rules must not cross-fire; the two
      // advisory note rules may legitimately observe any graph.
      if (other.severity == Severity::kNote) continue;
      EXPECT_FALSE(fired.count(other.rule))
          << other.rule << " cross-fired on " << fx.file << ":\n"
          << dump(result);
    }
  }
}

// ---------------------------------------------------------------------------
// Clean-corpus property: real inputs are analysis-clean at default severity.

void expect_clean(const AnalysisInput& input, const std::string& what) {
  const AnalysisResult result = analysis::run_analysis(input, {});
  // "Clean" is the exit-code contract: zero error-severity findings.
  // Warnings are allowed (live-in registers in loop kernels, external
  // branch targets) but failures print the full SARIF for diagnosis.
  EXPECT_EQ(result.num_errors, 0u)
      << what << " is not analysis-clean:\n"
      << analysis::to_sarif(result, what);
}

TEST(CleanCorpus, ShippedExamples) {
  const char* examples[] = {"fig3_loop.s", "two_block_trace.s",
                            "diamond_cfg.s", "memory_alias.s"};
  const MachineModel& m = machine("rs6000");
  for (const char* name : examples) {
    Program prog =
        parse_program(slurp(std::string(AIS_EXAMPLES_DIR) + "/" + name));
    const DepGraph g = build_trace_graph(Trace{prog.blocks}, m);
    AnalysisInput input;
    input.program = &prog;
    input.graph = &g;
    input.machine = &m;
    expect_clean(input, name);
  }
}

TEST(CleanCorpus, LoopKernels) {
  const MachineModel& m = machine("rs6000");
  for (const NamedLoop& named : all_loop_kernels()) {
    Program prog;
    prog.blocks = named.loop.body.blocks;
    const DepGraph g = build_loop_graph(named.loop, m);
    AnalysisInput input;
    input.program = &prog;
    input.graph = &g;
    input.machine = &m;
    expect_clean(input, named.name);
  }
}

TEST(CleanCorpus, RandomIrSeedSweep) {
  for (const char* preset : {"scalar01", "rs6000", "deep", "vliw4"}) {
    const MachineModel& m = machine(preset);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      Prng prng(seed * 0x9e37u);
      RandomIrParams params;
      params.num_insts = 12;

      Program prog;
      prog.blocks = random_ir_trace(prng, params, 2).blocks;
      const DepGraph tg = build_trace_graph(Trace{prog.blocks}, m);
      AnalysisInput trace_input;
      trace_input.program = &prog;
      trace_input.graph = &tg;
      trace_input.machine = &m;
      expect_clean(trace_input, std::string(preset) + " random trace seed " +
                                    std::to_string(seed));

      const Loop loop = random_ir_loop(prng, params);
      Program loop_prog;
      loop_prog.blocks = loop.body.blocks;
      const DepGraph lg = build_loop_graph(loop, m);
      AnalysisInput loop_input;
      loop_input.program = &loop_prog;
      loop_input.graph = &lg;
      loop_input.machine = &m;
      expect_clean(loop_input, std::string(preset) + " random loop seed " +
                                   std::to_string(seed));
    }
  }
}

// ---------------------------------------------------------------------------
// The --fix safety argument: reduction must never change a schedule.

TEST(Fix, ExampleSchedulesAreByteIdenticalAfterReduction) {
  const char* examples[] = {"fig3_loop.s", "two_block_trace.s",
                            "diamond_cfg.s", "memory_alias.s"};
  const MachineModel& m = machine("rs6000");
  for (const char* name : examples) {
    const Program prog =
        parse_program(slurp(std::string(AIS_EXAMPLES_DIR) + "/" + name));
    const DepGraph g = build_trace_graph(Trace{prog.blocks}, m);
    const analysis::FixResult fixed = analysis::reduce_and_prove(g, m);
    EXPECT_TRUE(fixed.proven) << name << ": " << fixed.detail;
    // The reduction runs to fixpoint: nothing redundant may remain.
    EXPECT_TRUE(analysis::redundant_edges(fixed.graph).empty()) << name;
    EXPECT_EQ(fixed.graph.num_nodes(), g.num_nodes()) << name;
    EXPECT_LE(fixed.graph.num_edges(), g.num_edges()) << name;
  }
}

TEST(Fix, RedundantEdgeFixtureReducesToTheTriangle) {
  std::string error;
  const std::optional<DepGraph> g = analysis::parse_graph_text(
      slurp(std::string(AIS_ANALYSIS_CORPUS_DIR) + "/redundant_edge.dg"),
      &error);
  ASSERT_TRUE(g.has_value()) << error;
  const analysis::FixResult fixed =
      analysis::reduce_and_prove(*g, machine("rs6000"));
  EXPECT_TRUE(fixed.proven) << fixed.detail;
  ASSERT_EQ(fixed.removed.size(), 1u);
  const DepEdge& removed = g->edge(fixed.removed[0]);
  EXPECT_EQ(g->node(removed.from).name, "a");
  EXPECT_EQ(g->node(removed.to).name, "c");
  EXPECT_EQ(fixed.graph.num_edges(), 2u);
}

// ---------------------------------------------------------------------------
// Graph text round-trip and SARIF shape.

TEST(GraphText, RoundTripsDepbuildGraphs) {
  const MachineModel& m = machine("rs6000");
  const Program prog = parse_program(
      slurp(std::string(AIS_EXAMPLES_DIR) + "/two_block_trace.s"));
  const DepGraph g = build_trace_graph(Trace{prog.blocks}, m);

  std::string error;
  const std::optional<DepGraph> round =
      analysis::parse_graph_text(analysis::write_graph_text(g), &error);
  ASSERT_TRUE(round.has_value()) << error;
  ASSERT_EQ(round->num_nodes(), g.num_nodes());
  ASSERT_EQ(round->num_edges(), g.num_edges());
  for (NodeId id = 0; id < static_cast<NodeId>(g.num_nodes()); ++id) {
    EXPECT_EQ(round->node(id).exec_time, g.node(id).exec_time);
    EXPECT_EQ(round->node(id).fu_class, g.node(id).fu_class);
    EXPECT_EQ(round->node(id).block, g.node(id).block);
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(round->edge(e).from, g.edge(e).from);
    EXPECT_EQ(round->edge(e).to, g.edge(e).to);
    EXPECT_EQ(round->edge(e).latency, g.edge(e).latency);
    EXPECT_EQ(round->edge(e).distance, g.edge(e).distance);
  }
}

TEST(GraphText, RejectsMalformedInputWithLineNumbers) {
  std::string error;
  EXPECT_FALSE(analysis::parse_graph_text("node a\nedge a b\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(analysis::parse_graph_text("node a\nnode a\n", &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_FALSE(analysis::parse_graph_text("widget a\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(Sarif, EmitsWellFormedRunWithRuleMetadata) {
  Program prog = parse_program(slurp(
      std::string(AIS_ANALYSIS_CORPUS_DIR) + "/dead_def.s"));
  const MachineModel& m = machine("rs6000");
  const DepGraph g = build_trace_graph(Trace{prog.blocks}, m);
  AnalysisInput input;
  input.program = &prog;
  input.graph = &g;
  input.machine = &m;
  const AnalysisResult result = analysis::run_analysis(input, {});
  const std::string sarif = analysis::to_sarif(result, "dead_def.s");

  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"aislint\""), std::string::npos);
  // Every registry rule appears in the driver metadata...
  for (const analysis::RuleInfo& info : analysis::rule_registry()) {
    EXPECT_NE(sarif.find("\"id\": \"" + info.id + "\""), std::string::npos)
        << info.id;
  }
  // ...and the finding carries its rule id and the artifact location.
  EXPECT_NE(sarif.find("\"ruleId\": \"dead-def\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"dead_def.s\""), std::string::npos);
}

}  // namespace
}  // namespace ais
