// Differential properties for the optimized Rank/Merge/Move_Idle hot path.
//
// The session-cached scheduler (closure reuse, incremental reranks, the
// persistent by-rank ordering, the packed-key sort, the ready-queue greedy
// pass) and the galloping Merge relaxation are required to be *byte
// identical* to the straightforward pre-optimization formulation.  That
// formulation is re-implemented here, verbatim from the original code, as
// an in-test oracle; every test below drives both implementations over
// randomized instances and compares schedules, ranks, deadlines and relax
// amounts exactly — not approximately.
#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/deadlines.hpp"
#include "core/lookahead.hpp"
#include "core/merge.hpp"
#include "core/move_idle.hpp"
#include "core/rank.hpp"
#include "core/schedule_cache.hpp"
#include "graph/closure.hpp"
#include "graph/topo.hpp"
#include "machine/machine_model.hpp"
#include "obs/obs.hpp"
#include "support/prng.hpp"
#include "support/thread_pool.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

constexpr Time kInf = std::numeric_limits<Time>::max() / 4;

// ---------------------------------------------------------------------------
// Reference implementations (the pre-optimization formulation).
// ---------------------------------------------------------------------------

/// Original descendant closure, verbatim from the pre-ClosureMatrix code:
/// one independently allocated DynamicBitset per row instead of the
/// contiguous row-major matrix.  Kept as the oracle the contiguous layout
/// is differenced against (rows, reachability, and the donor-copy
/// constructor the lookahead prescheduler uses).
class RefDescendantClosure {
 public:
  RefDescendantClosure(const DepGraph& g, const NodeSet& active)
      : RefDescendantClosure(g, active, nullptr, nullptr) {}

  RefDescendantClosure(const DepGraph& g, const NodeSet& active,
                       const RefDescendantClosure& donor,
                       const NodeSet& donor_nodes)
      : RefDescendantClosure(g, active, &donor, &donor_nodes) {}

  const DynamicBitset& descendants(NodeId id) const {
    EXPECT_TRUE(id < domain_ && member_[id]);
    return desc_[id];
  }

  bool reaches(NodeId ancestor, NodeId descendant) const {
    return descendants(ancestor).test(descendant);
  }

 private:
  RefDescendantClosure(const DepGraph& g, const NodeSet& active,
                       const RefDescendantClosure* donor,
                       const NodeSet* donor_nodes)
      : domain_(g.num_nodes()),
        desc_(g.num_nodes(), DynamicBitset(g.num_nodes())),
        member_(g.num_nodes(), false) {
    const auto order = topo_order(g, active);
    EXPECT_TRUE(order.has_value());
    for (const NodeId id : *order) member_[id] = true;

    // Reverse topological order: successors' closures are complete first.
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const NodeId id = *it;
      if (donor != nullptr && donor_nodes->contains(id)) {
        desc_[id] = donor->descendants(id);
        continue;
      }
      DynamicBitset& mine = desc_[id];
      for (const auto eidx : g.out_edges(id)) {
        const DepEdge& e = g.edge(eidx);
        if (e.distance != 0 || !active.contains(e.to)) continue;
        mine.set(e.to);
        mine |= desc_[e.to];
      }
    }
  }

  std::size_t domain_;
  std::vector<DynamicBitset> desc_;
  std::vector<bool> member_;
};

/// Backward packer of the original compute_ranks: one lane per physical
/// unit, re-created from scratch for every node.
class RefBackwardPacker {
 public:
  explicit RefBackwardPacker(const MachineModel& machine) {
    avail_.resize(static_cast<std::size_t>(machine.num_fu_classes()));
    for (int c = 0; c < machine.num_fu_classes(); ++c) {
      avail_[static_cast<std::size_t>(c)].assign(
          static_cast<std::size_t>(machine.fu_count(c)), kInf);
    }
  }

  Time insert(int fu_class, int exec_time, Time rank, bool split) {
    auto& lanes = avail_[static_cast<std::size_t>(fu_class)];
    if (!split || exec_time == 1) {
      auto best = std::max_element(lanes.begin(), lanes.end());
      const Time completion = std::min(rank, *best);
      *best = completion - exec_time;
      return completion - exec_time;
    }
    Time earliest = kInf;
    for (int piece = 0; piece < exec_time; ++piece) {
      auto best = std::max_element(lanes.begin(), lanes.end());
      const Time completion = std::min(rank, *best);
      *best = completion - 1;
      earliest = std::min(earliest, completion - 1);
    }
    return earliest;
  }

 private:
  std::vector<std::vector<Time>> avail_;
};

/// Original compute_ranks: fresh topo order + closure per call, per-node
/// descendant sort, fresh packer and back_start per node.
std::vector<Time> ref_compute_ranks(const RankScheduler& scheduler,
                                    const NodeSet& active,
                                    const DeadlineMap& deadlines,
                                    const RankOptions& opts,
                                    bool* structurally_feasible = nullptr) {
  const DepGraph& graph = scheduler.graph();
  const auto order = topo_order(graph, active);
  EXPECT_TRUE(order.has_value());
  const RefDescendantClosure closure(graph, active);

  std::vector<Time> rank(graph.num_nodes(), kInf);
  bool ok = true;

  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId x = *it;
    Time r = deadlines[x];

    std::vector<NodeId> desc;
    closure.descendants(x).for_each(
        [&desc](std::size_t i) { desc.push_back(static_cast<NodeId>(i)); });
    std::sort(desc.begin(), desc.end(), [&rank](NodeId a, NodeId b) {
      return std::tie(rank[b], a) < std::tie(rank[a], b);
    });

    RefBackwardPacker packer(scheduler.machine());
    std::vector<Time> back_start(graph.num_nodes(), kInf);
    for (const NodeId y : desc) {
      const NodeInfo& info = graph.node(y);
      back_start[y] = packer.insert(info.fu_class, info.exec_time, rank[y],
                                    opts.split_long_ops);
      r = std::min(r, back_start[y]);
    }
    for (const auto eidx : graph.out_edges(x)) {
      const DepEdge& e = graph.edge(eidx);
      if (e.distance != 0 || !active.contains(e.to)) continue;
      r = std::min(r, back_start[e.to] - e.latency);
    }

    rank[x] = r;
    if (r < graph.node(x).exec_time) ok = false;
  }

  if (structurally_feasible != nullptr) *structurally_feasible = ok;
  return rank;
}

/// Original greedy list scheduler: rescan the priority list from the front
/// after every placement, advance time one cycle at a time.
Schedule ref_greedy_from_list(const RankScheduler& scheduler,
                              const NodeSet& active,
                              const std::vector<NodeId>& list) {
  const DepGraph& graph = scheduler.graph();
  const MachineModel& machine = scheduler.machine();

  std::vector<int> unit_base(
      static_cast<std::size_t>(machine.num_fu_classes()), 0);
  int total_units = 0;
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    unit_base[static_cast<std::size_t>(c)] = total_units;
    total_units += machine.fu_count(c);
  }

  Schedule sched(&graph, active, total_units);
  std::vector<Time> unit_free(static_cast<std::size_t>(total_units), 0);

  std::vector<int> preds_left(graph.num_nodes(), 0);
  std::vector<Time> est(graph.num_nodes(), 0);
  for (const NodeId id : list) {
    for (const auto eidx : graph.in_edges(id)) {
      const DepEdge& e = graph.edge(eidx);
      if (e.distance == 0 && active.contains(e.from)) ++preds_left[id];
    }
  }

  std::size_t unplaced = list.size();
  Time t = 0;
  while (unplaced > 0) {
    int issued = 0;
    bool progressed = true;
    while (progressed && issued < machine.issue_width()) {
      progressed = false;
      for (const NodeId id : list) {
        if (sched.placed(id)) continue;
        if (preds_left[id] != 0 || est[id] > t) continue;
        const NodeInfo& info = graph.node(id);
        const int base = unit_base[static_cast<std::size_t>(info.fu_class)];
        int chosen = -1;
        for (int k = 0; k < machine.fu_count(info.fu_class); ++k) {
          if (unit_free[static_cast<std::size_t>(base + k)] <= t) {
            chosen = base + k;
            break;
          }
        }
        if (chosen < 0) continue;
        sched.place(id, t, chosen);
        unit_free[static_cast<std::size_t>(chosen)] = t + info.exec_time;
        --unplaced;
        ++issued;
        for (const auto eidx : graph.out_edges(id)) {
          const DepEdge& e = graph.edge(eidx);
          if (e.distance != 0 || !active.contains(e.to)) continue;
          est[e.to] = std::max(est[e.to], t + info.exec_time + e.latency);
          --preds_left[e.to];
        }
        progressed = true;
        break;
      }
    }
    ++t;
  }
  return sched;
}

struct RefRunResult {
  bool feasible = false;
  std::vector<Time> rank;
  Schedule schedule;
  Time makespan = 0;
};

/// Original run: sort by (rank, tie, id) with make_tuple, greedy, decide
/// feasibility by the schedule against the deadlines.
RefRunResult ref_run(const RankScheduler& scheduler, const NodeSet& active,
                     const DeadlineMap& deadlines, const RankOptions& opts) {
  std::vector<Time> rank = ref_compute_ranks(scheduler, active, deadlines,
                                             opts);

  std::vector<NodeId> list = active.ids();
  const auto tie_value = [&opts](NodeId id) {
    return opts.tie_break.empty() ? static_cast<int>(id) : opts.tie_break[id];
  };
  std::sort(list.begin(), list.end(), [&](NodeId a, NodeId b) {
    return std::make_tuple(rank[a], tie_value(a), a) <
           std::make_tuple(rank[b], tie_value(b), b);
  });

  RefRunResult result{
      .feasible = true,
      .rank = std::move(rank),
      .schedule = ref_greedy_from_list(scheduler, active, list),
      .makespan = 0,
  };
  result.makespan = result.schedule.makespan();
  for (const NodeId id : active.ids()) {
    if (result.schedule.completion(id) > deadlines[id]) {
      result.feasible = false;
      break;
    }
  }
  return result;
}

struct RefMergeResult {
  Schedule schedule;
  Time makespan = 0;
  DeadlineMap deadlines;
  Time relax = 0;
};

/// Original merge_blocks: the unconditional +1 linear relaxation scan,
/// every round a full fresh Rank Algorithm run.
RefMergeResult ref_merge_blocks(const RankScheduler& scheduler,
                                const NodeSet& old_nodes,
                                const NodeSet& new_nodes,
                                const DeadlineMap& deadlines, Time t_old,
                                Time huge, const RankOptions& opts) {
  const DepGraph& g = scheduler.graph();
  const NodeSet cur = set_union(old_nodes, new_nodes);

  DeadlineMap d_cur = uniform_deadlines(g, huge);
  const RefRunResult lower = ref_run(scheduler, cur, d_cur, opts);
  EXPECT_TRUE(lower.feasible);
  const Time t_lower = lower.makespan;

  for (const NodeId w : old_nodes.ids()) {
    d_cur[w] = std::min(deadlines[w], t_old);
  }
  for (const NodeId w : new_nodes.ids()) d_cur[w] = t_lower;

  const Time new_only_limit =
      t_old + g.max_latency() + g.total_work() + 1 - t_lower;
  const Time hard_limit =
      new_only_limit + g.total_work() +
      static_cast<Time>(cur.size() + 1) * (g.max_latency() + 1);
  Time relax = 0;
  while (true) {
    RefRunResult result = ref_run(scheduler, cur, d_cur, opts);
    if (result.feasible) {
      return RefMergeResult{
          .schedule = std::move(result.schedule),
          .makespan = result.makespan,
          .deadlines = std::move(d_cur),
          .relax = relax,
      };
    }
    ++relax;
    EXPECT_LE(relax, hard_limit) << "reference merge diverged";
    for (const NodeId w : new_nodes.ids()) ++d_cur[w];
    if (relax > new_only_limit) {
      for (const NodeId w : old_nodes.ids()) ++d_cur[w];
    }
  }
}

// ---------------------------------------------------------------------------
// Comparison helpers.
// ---------------------------------------------------------------------------

void expect_same_schedule(const Schedule& got, const Schedule& want,
                          const NodeSet& active) {
  EXPECT_EQ(got.makespan(), want.makespan());
  EXPECT_EQ(got.permutation(), want.permutation());
  for (const NodeId id : active.ids()) {
    ASSERT_TRUE(got.placed(id));
    ASSERT_TRUE(want.placed(id));
    EXPECT_EQ(got.start(id), want.start(id)) << "node " << id;
    EXPECT_EQ(got.unit_of(id), want.unit_of(id)) << "node " << id;
  }
}

void expect_same_ranks(const std::vector<Time>& got,
                       const std::vector<Time>& want, const NodeSet& active) {
  for (const NodeId id : active.ids()) {
    EXPECT_EQ(got[id], want[id]) << "rank of node " << id;
  }
}

/// Random deadline map: each active node gets a deadline in
/// [exec_time, huge], biased toward tight values so infeasible-ish regimes
/// get exercised too.
DeadlineMap random_deadlines(Prng& prng, const DepGraph& g,
                             const NodeSet& active, Time huge) {
  DeadlineMap d = uniform_deadlines(g, huge);
  for (const NodeId id : active.ids()) {
    if (prng.uniform(0, 3) == 0) continue;  // keep huge
    d[id] = prng.uniform(g.node(id).exec_time, huge);
  }
  return d;
}

struct Regime {
  const char* name;
  MachineModel machine;
  int max_latency;
};

std::vector<Regime> regimes() {
  return {
      {"scalar01", scalar01(), 1},
      {"scalar01-lat3", scalar01(), 3},
      {"deep_pipeline", deep_pipeline(), 3},
      {"vliw4", vliw4(), 2},
  };
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

/// compute_ranks and run must agree with the reference on random traces
/// across machines, latency regimes, tie-break vectors and the
/// split-long-ops switch.
TEST(Differential, RankAndRunMatchReference) {
  for (const Regime& regime : regimes()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Prng prng(0xd1ff + seed * 977);
      RandomTraceParams params;
      params.num_blocks = 3;
      params.block.num_nodes = 18;
      params.block.edge_prob = 0.3;
      params.block.max_latency = regime.max_latency;
      params.cross_edges = 2;
      const DepGraph g = random_trace(prng, params);
      const RankScheduler scheduler(g, regime.machine);
      const NodeSet all = NodeSet::all(g.num_nodes());
      const Time huge = huge_deadline(g, all);

      for (int variant = 0; variant < 3; ++variant) {
        const DeadlineMap d = variant == 0
                                  ? uniform_deadlines(g, huge)
                                  : random_deadlines(prng, g, all, huge);
        RankOptions opts;
        opts.split_long_ops = (variant == 2);
        if (variant == 2) {
          opts.tie_break.resize(g.num_nodes());
          for (auto& t : opts.tie_break) {
            t = static_cast<int>(prng.uniform(0, 5));
          }
        }

        bool got_ok = true;
        bool want_ok = true;
        const std::vector<Time> got_rank = scheduler.compute_ranks(
            all, d, opts, &got_ok);
        const std::vector<Time> want_rank =
            ref_compute_ranks(scheduler, all, d, opts, &want_ok);
        expect_same_ranks(got_rank, want_rank, all);
        EXPECT_EQ(got_ok, want_ok);

        const RankResult got = scheduler.run(all, d, opts);
        const RefRunResult want = ref_run(scheduler, all, d, opts);
        EXPECT_EQ(got.feasible, want.feasible)
            << regime.name << " seed " << seed << " variant " << variant;
        expect_same_ranks(got.rank, want.rank, all);
        expect_same_schedule(got.schedule, want.schedule, all);
        EXPECT_EQ(got.makespan, want.makespan);
      }
    }
  }
}

/// Same property on typed-machine graphs (realistic FU classes, non-unit
/// execution times drawn from the machine), both packing modes.
TEST(Differential, RankAndRunMatchReferenceTypedMachines) {
  for (const MachineModel& machine : {rs6000_like(), vliw4()}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Prng gen(0x7e9d + seed * 131);
      const DepGraph g = random_machine_trace(gen, machine, /*num_blocks=*/3,
                                              /*nodes_per_block=*/14,
                                              /*edge_prob=*/0.3,
                                              /*cross_edges=*/2);
      const RankScheduler scheduler(g, machine);
      const NodeSet all = NodeSet::all(g.num_nodes());
      const Time huge = huge_deadline(g, all);

      for (const bool split : {false, true}) {
        const DeadlineMap d = random_deadlines(gen, g, all, huge);
        RankOptions opts;
        opts.split_long_ops = split;

        const RankResult got = scheduler.run(all, d, opts);
        const RefRunResult want = ref_run(scheduler, all, d, opts);
        EXPECT_EQ(got.feasible, want.feasible);
        expect_same_ranks(got.rank, want.rank, all);
        expect_same_schedule(got.schedule, want.schedule, all);
      }
    }
  }
}

/// A long-lived session fed a random deadline mutation sequence must match
/// a fresh reference computation at every step — this drives the O(1)
/// deadline-only rerank path, reposition(), and the full incremental sweep.
TEST(Differential, SessionIncrementalMatchesFresh) {
  for (const Regime& regime : regimes()) {
    Prng prng(0x5e55 + static_cast<std::uint64_t>(regime.max_latency));
    RandomBlockParams params;
    params.num_nodes = 36;
    params.edge_prob = 0.15;
    params.max_latency = regime.max_latency;
    const DepGraph g = random_block(prng, params);
    const RankScheduler scheduler(g, regime.machine);
    const NodeSet all = NodeSet::all(g.num_nodes());
    const Time huge = huge_deadline(g, all);

    RankSession session(scheduler, all);
    DeadlineMap d = uniform_deadlines(g, huge);
    const RankOptions opts;

    for (int step = 0; step < 40; ++step) {
      // Mutate a random subset; sometimes a single node (the O(1) path),
      // sometimes a swath (the incremental sweep + repositioning).
      const int touched =
          step % 3 == 0 ? 1 : static_cast<int>(prng.uniform(2, 12));
      for (int k = 0; k < touched; ++k) {
        const NodeId id =
            static_cast<NodeId>(prng.uniform(0, g.num_nodes() - 1));
        d[id] = prng.uniform(g.node(id).exec_time, huge);
      }

      bool got_ok = true;
      bool want_ok = true;
      const std::vector<Time>& got = session.compute_ranks(d, opts, &got_ok);
      const std::vector<Time> want =
          ref_compute_ranks(scheduler, all, d, opts, &want_ok);
      expect_same_ranks(got, want, all);
      EXPECT_EQ(got_ok, want_ok) << regime.name << " step " << step;

      if (step % 4 == 1) {
        const RankResult got_run = session.run(d, opts);
        const RefRunResult want_run = ref_run(scheduler, all, d, opts);
        EXPECT_EQ(got_run.feasible, want_run.feasible);
        expect_same_schedule(got_run.schedule, want_run.schedule, all);
      }

      // Exercise snapshot/restore: take a snapshot, wander off to other
      // deadlines, restore, and verify the next computation still matches
      // the reference for *current* deadlines.
      if (step % 5 == 2) {
        session.snapshot();
        DeadlineMap detour = d;
        for (const NodeId id : all.ids()) {
          detour[id] = std::max<Time>(g.node(id).exec_time, d[id] / 2);
        }
        (void)session.compute_ranks(detour, opts);
        session.restore_snapshot();
        const std::vector<Time>& back = session.compute_ranks(d, opts);
        expect_same_ranks(back, want, all);
      }
    }
  }
}

/// Galloping + bisection in the restricted case must return exactly the
/// relax amount, deadlines and schedule of the +1 linear scan.
TEST(Differential, MergeMatchesLinearReferenceRestricted) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Prng prng(0x3a6e + seed * 53);
    RandomTraceParams params;
    params.num_blocks = 2;
    params.block.num_nodes = 16;
    params.block.edge_prob = 0.25;
    params.block.max_latency = 1;
    params.cross_edges = 3;
    const DepGraph g = random_trace(prng, params);
    const MachineModel machine = scalar01();
    const RankScheduler scheduler(g, machine);
    const std::vector<NodeSet> blocks = blocks_of(g);
    ASSERT_EQ(blocks.size(), 2u);
    const Time huge = huge_deadline(g, NodeSet::all(g.num_nodes()));
    DeadlineMap deadlines = uniform_deadlines(g, huge);
    const RankResult old_alone = scheduler.run(blocks[0], deadlines, {});
    ASSERT_TRUE(old_alone.feasible);
    // Two deadline setups: pinned-to-completions forces relax > 0, huge
    // leaves relax == 0 — both ends of the gallop.
    for (const bool pinned : {true, false}) {
      DeadlineMap d = deadlines;
      if (pinned) {
        for (const NodeId id : blocks[0].ids()) {
          d[id] = old_alone.schedule.completion(id);
        }
      }
      const NodeSet cur = set_union(blocks[0], blocks[1]);
      const MergeResult got = merge_blocks(scheduler, blocks[0], blocks[1], d,
                                           old_alone.makespan, huge, {});
      const RefMergeResult want = ref_merge_blocks(
          scheduler, blocks[0], blocks[1], d, old_alone.makespan, huge, {});
      EXPECT_EQ(got.relax, want.relax) << "seed " << seed;
      EXPECT_EQ(got.makespan, want.makespan);
      expect_same_schedule(got.schedule, want.schedule, cur);
      for (const NodeId id : cur.ids()) {
        EXPECT_EQ(got.deadlines[id], want.deadlines[id]) << "node " << id;
      }
    }
  }
}

/// In heuristic regimes (typed units, latencies > 1) the optimized merge
/// takes the legacy +1 scan — results must still match the reference.
TEST(Differential, MergeMatchesReferenceHeuristic) {
  struct Case {
    MachineModel machine;
    bool typed;
    int max_latency;
  };
  const std::vector<Case> cases = {
      {deep_pipeline(), false, 3},
      {rs6000_like(), true, 1},
  };
  for (const Case& c : cases) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Prng prng(0x8e07 + seed * 17);
      DepGraph g = [&] {
        if (c.typed) {
          return random_machine_trace(prng, c.machine, 2, 12, 0.3, 2);
        }
        RandomTraceParams params;
        params.num_blocks = 2;
        params.block.num_nodes = 12;
        params.block.edge_prob = 0.3;
        params.block.max_latency = c.max_latency;
        params.cross_edges = 2;
        return random_trace(prng, params);
      }();
      const RankScheduler scheduler(g, c.machine);
      const std::vector<NodeSet> blocks = blocks_of(g);
      ASSERT_EQ(blocks.size(), 2u);
      const NodeSet cur = set_union(blocks[0], blocks[1]);
      const Time huge = huge_deadline(g, NodeSet::all(g.num_nodes()));
      DeadlineMap d = uniform_deadlines(g, huge);
      const RankResult old_alone = scheduler.run(blocks[0], d, {});
      ASSERT_TRUE(old_alone.feasible);
      for (const NodeId id : blocks[0].ids()) {
        d[id] = old_alone.schedule.completion(id);
      }
      for (const bool split : {false, true}) {
        RankOptions opts;
        opts.split_long_ops = split;
        const MergeResult got = merge_blocks(scheduler, blocks[0], blocks[1],
                                             d, old_alone.makespan, huge,
                                             opts);
        const RefMergeResult want =
            ref_merge_blocks(scheduler, blocks[0], blocks[1], d,
                             old_alone.makespan, huge, opts);
        EXPECT_EQ(got.relax, want.relax);
        EXPECT_EQ(got.makespan, want.makespan);
        expect_same_schedule(got.schedule, want.schedule, cur);
        for (const NodeId id : cur.ids()) {
          EXPECT_EQ(got.deadlines[id], want.deadlines[id]);
        }
      }
    }
  }
}

/// The ready-queue greedy pass must place exactly like the front-rescan
/// formulation for *any* priority list, not just rank-sorted ones.
TEST(Differential, GreedyQueueMatchesFrontRescan) {
  for (const MachineModel& machine :
       {scalar01(), rs6000_like(), vliw4(), deep_pipeline()}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Prng prng(0x96ee + seed * 271);
      const DepGraph g =
          random_machine_block(prng, machine, /*num_nodes=*/30,
                               /*edge_prob=*/0.2);
      const RankScheduler scheduler(g, machine);
      const NodeSet all = NodeSet::all(g.num_nodes());

      // Random priority list: sort ids by a random key.
      std::vector<NodeId> list = all.ids();
      std::vector<std::uint64_t> key(list.size());
      for (auto& k : key) k = prng();
      std::sort(list.begin(), list.end(), [&](NodeId a, NodeId b) {
        return std::tie(key[a], a) < std::tie(key[b], b);
      });

      const Schedule got = scheduler.greedy_from_list(all, list);
      const Schedule want = ref_greedy_from_list(scheduler, all, list);
      expect_same_schedule(got, want, all);
    }
  }
}

/// The contiguous ClosureMatrix-backed closure must agree bit-for-bit with
/// the original per-row DynamicBitset closure on random graphs: every row,
/// every reachability query, and the donor-copy constructor path the
/// lookahead prescheduler uses when it grafts a warmed block session into a
/// trace session.
TEST(Differential, ClosureMatrixMatchesPerRowBitsets) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Prng prng(0xc105 + seed * 977);
    RandomTraceParams params;
    params.num_blocks = 3;
    params.block.num_nodes = 8 + static_cast<int>(seed) * 7;
    params.block.edge_prob = 0.15 + 0.05 * static_cast<double>(seed % 3);
    params.cross_edges = 3;
    const DepGraph g = random_trace(prng, params);
    const NodeSet all = NodeSet::all(g.num_nodes());

    const DescendantClosure got(g, all);
    const RefDescendantClosure want(g, all);
    for (NodeId x = 0; x < g.num_nodes(); ++x) {
      const ClosureRow row = got.descendants(x);
      const DynamicBitset& ref = want.descendants(x);
      ASSERT_EQ(row.count(), ref.count()) << "row " << x;
      for (NodeId y = 0; y < g.num_nodes(); ++y) {
        ASSERT_EQ(row.test(y), ref.test(y)) << x << " -> " << y;
        ASSERT_EQ(got.reaches(x, y), want.reaches(x, y)) << x << " -> " << y;
      }
      // for_each must visit exactly the set bits, ascending.
      std::vector<NodeId> via_words;
      row.for_each([&](std::size_t i) {
        via_words.push_back(static_cast<NodeId>(i));
      });
      std::vector<std::size_t> ref_ids = ref.to_indices();
      ASSERT_EQ(via_words.size(), ref_ids.size());
      for (std::size_t i = 0; i < ref_ids.size(); ++i) {
        EXPECT_EQ(via_words[i], static_cast<NodeId>(ref_ids[i]));
      }
    }

    // Donor-copy path: rows of the first block come from a closure built
    // over that block alone; both implementations must copy identically.
    const std::vector<NodeSet> blocks = blocks_of(g);
    const DescendantClosure got_donor(g, blocks[0]);
    const RefDescendantClosure want_donor(g, blocks[0]);
    const DescendantClosure got_merged(g, all, got_donor, blocks[0]);
    const RefDescendantClosure want_merged(g, all, want_donor, blocks[0]);
    for (NodeId x = 0; x < g.num_nodes(); ++x) {
      const ClosureRow row = got_merged.descendants(x);
      const DynamicBitset& ref = want_merged.descendants(x);
      for (NodeId y = 0; y < g.num_nodes(); ++y) {
        ASSERT_EQ(row.test(y), ref.test(y)) << "donor row " << x << " -> " << y;
      }
    }
  }
}

/// delay_idle_slots drives move_idle_slot's speculative snapshot/restore
/// machinery; its output must be independent of the session caching (the
/// one-shot move_idle_slot overload constructs a fresh session per call).
TEST(Differential, DelayIdleSlotsSessionIndependent) {
  Prng prng(0xde1a);
  RandomBlockParams params;
  params.num_nodes = 28;
  params.layers = 14;
  params.edge_prob = 0.8;
  params.max_latency = 3;
  const DepGraph g = random_block(prng, params);
  const MachineModel machine = deep_pipeline();
  const RankScheduler scheduler(g, machine);
  const NodeSet all = NodeSet::all(g.num_nodes());
  DeadlineMap base = uniform_deadlines(g, huge_deadline(g, all));
  const RankResult r = scheduler.run(all, base, {});
  ASSERT_TRUE(r.feasible);
  DeadlineMap d1 = base;
  for (const NodeId id : all.ids()) d1[id] = r.makespan;
  DeadlineMap d2 = d1;

  // Sweep once through the shared-session driver...
  Schedule via_driver = delay_idle_slots(scheduler, r.schedule, d1, {});

  // ...and once slot-by-slot through fresh sessions.
  Schedule s = r.schedule;
  std::size_t i = 0;
  while (true) {
    const auto& slots = s.idle_slots();
    if (i >= slots.size()) break;
    IdleSlot slot = slots[i];
    while (true) {
      MoveIdleResult res = move_idle_slot(scheduler, s, d2, slot, {});
      s = std::move(res.schedule);
      if (!res.moved || res.slot.time >= s.makespan()) break;
      slot = res.slot;
    }
    ++i;
  }

  expect_same_schedule(via_driver, s, all);
  EXPECT_EQ(d1, d2);
}

void expect_same_lookahead(const LookaheadResult& got,
                           const LookaheadResult& want,
                           const std::string& what) {
  EXPECT_EQ(got.order, want.order) << what;
  EXPECT_EQ(got.per_block, want.per_block) << what;
  EXPECT_EQ(got.diag.merged_makespans, want.diag.merged_makespans) << what;
  EXPECT_EQ(got.diag.prefixes_emitted, want.diag.prefixes_emitted) << what;
  EXPECT_EQ(got.diag.max_inversion_span, want.diag.max_inversion_span) << what;
}

/// The schedule cache must be output-invisible: every trace compile with
/// the cache on — cold misses, warm trace hits, step hits inside cold
/// traces — produces byte-identical schedules, diagnostics and counter
/// deltas (cache.* excluded by the recorder) to a bypassed solve.  Seeds
/// repeat so the sequence genuinely contains trace- and step-level hits.
TEST(Differential, CacheOnMatchesCacheOffSerial) {
  ScheduleCache& cache = ScheduleCache::global();
  const bool was_enabled = cache.enabled();
  cache.set_enabled(true);
  cache.clear();

  struct CacheRegime {
    const char* name;
    MachineModel machine;
    int max_latency;
    int window;
  };
  const std::vector<CacheRegime> cache_regimes = {
      {"scalar01-unit", scalar01(), 1, 4},
      {"deep-lat3", deep_pipeline(), 3, 6},
      {"vliw4-lat2", vliw4(), 2, 4},
  };

  for (const CacheRegime& regime : cache_regimes) {
    for (int round = 0; round < 8; ++round) {
      // Half the rounds replay an earlier seed: those traces must be
      // served from the cache, and still match the bypassed reference.
      Prng prng(0xcac4e + static_cast<std::uint64_t>(round % 4) * 769);
      RandomTraceParams params;
      params.num_blocks = 4;
      params.block.num_nodes = 12;
      params.block.edge_prob = 0.3;
      params.block.max_latency = regime.max_latency;
      params.cross_edges = 2;
      const DepGraph g = random_trace(prng, params);
      const RankScheduler scheduler(g, regime.machine);
      LookaheadOptions opts;
      opts.window = regime.window;

      LookaheadResult want;
      CounterDeltaMap want_deltas;
      {
        ScheduleCache::ScopedBypass bypass;
        obs::CounterRecorder rec;
        want = schedule_trace(scheduler, opts);
        want_deltas = rec.deltas();
      }

      LookaheadResult got;
      CounterDeltaMap got_deltas;
      {
        obs::CounterRecorder rec;
        got = schedule_trace(scheduler, opts);
        got_deltas = rec.deltas();
      }

      const std::string what =
          std::string(regime.name) + " round " + std::to_string(round);
      expect_same_lookahead(got, want, what);
      EXPECT_EQ(got_deltas, want_deltas) << what;
    }
  }
  cache.set_enabled(was_enabled);
}

/// Same property under parallel trace compilation: eight threads hammer
/// the shared sharded cache (duplicated traces force cross-thread hits)
/// and every result must equal its serial bypassed reference.
TEST(Differential, CacheOnMatchesCacheOffParallel) {
  ScheduleCache& cache = ScheduleCache::global();
  const bool was_enabled = cache.enabled();
  cache.set_enabled(true);
  cache.clear();

  const MachineModel machine = deep_pipeline();
  LookaheadOptions opts;
  opts.window = 6;

  constexpr std::size_t kUnique = 6;
  constexpr std::size_t kTotal = 24;
  std::vector<DepGraph> graphs;
  graphs.reserve(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    Prng prng(0xbeef + (i % kUnique) * 3571);
    RandomTraceParams params;
    params.num_blocks = 3;
    params.block.num_nodes = 14;
    params.block.edge_prob = 0.3;
    params.block.max_latency = 3;
    params.cross_edges = 2;
    graphs.push_back(random_trace(prng, params));
  }

  std::vector<LookaheadResult> want(kTotal);
  {
    ScheduleCache::ScopedBypass bypass;
    for (std::size_t i = 0; i < kTotal; ++i) {
      const RankScheduler scheduler(graphs[i], machine);
      want[i] = schedule_trace(scheduler, opts);
    }
  }

  std::vector<LookaheadResult> got(kTotal);
  parallel_for(8, kTotal, [&](std::size_t i) {
    const RankScheduler scheduler(graphs[i], machine);
    got[i] = schedule_trace(scheduler, opts);
  });

  for (std::size_t i = 0; i < kTotal; ++i) {
    expect_same_lookahead(got[i], want[i], "trace " + std::to_string(i));
  }
  cache.set_enabled(was_enabled);
}

}  // namespace
}  // namespace ais
