// Tests for loop scheduling (§5): single-block candidates and the
// multi-block wrap-around, against the paper's Figures 3 and 8.
#include <gtest/gtest.h>

#include "core/loop_single.hpp"
#include "core/loop_trace.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "sim/loop_sim.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

std::vector<std::string> names_of(const DepGraph& g,
                                  const std::vector<NodeId>& ids) {
  std::vector<std::string> out;
  for (const NodeId id : ids) out.push_back(g.node(id).name);
  return out;
}

/// Evaluator: steady-state cycles/iteration at the given window.
auto period_evaluator(const DepGraph& g, const MachineModel& machine,
                      int window) {
  return [&g, &machine, window](const std::vector<NodeId>& order) {
    return steady_state_period(g, machine, order, window);
  };
}

TEST(LoopSingle, Fig3MultiplyPivotYieldsScheduleTwo) {
  const DepGraph g = fig3_loop();
  const MachineModel machine = scalar01();
  // Paper: "Schedule 2 is obtained when the MULTIPLY instruction is
  // selected as a candidate for the source node in step 1."
  const LoopCandidate cand =
      build_loop_candidate(g, machine, g.find("M"), /*source_form=*/true, {});
  EXPECT_EQ(names_of(g, cand.order),
            (std::vector<std::string>{"L4", "ST", "M", "C4", "BT"}));
}

TEST(LoopSingle, Fig3GeneralCasePicksSteadyStateOptimal) {
  const DepGraph g = fig3_loop();
  const MachineModel machine = scalar01();
  LoopSingleOptions opts;
  opts.prune = LoopSingleOptions::Prune::kNever;
  const LoopCandidate best = schedule_single_block_loop(
      g, machine, period_evaluator(g, machine, 1), opts);
  EXPECT_DOUBLE_EQ(steady_state_period(g, machine, best.order, 1), 6.0);
  EXPECT_EQ(names_of(g, best.order),
            (std::vector<std::string>{"L4", "ST", "M", "C4", "BT"}));
}

TEST(LoopSingle, Fig3CandidateSetCoversBothSchedules) {
  const DepGraph g = fig3_loop();
  const MachineModel machine = scalar01();
  LoopSingleOptions opts;
  opts.prune = LoopSingleOptions::Prune::kNever;
  const auto candidates = loop_single_candidates(g, machine, opts);
  EXPECT_GE(candidates.size(), 4u);
  bool found_sched1 = false;
  bool found_sched2 = false;
  for (const auto& cand : candidates) {
    const auto names = names_of(g, cand.order);
    if (names == std::vector<std::string>{"L4", "ST", "C4", "M", "BT"}) {
      found_sched1 = true;
    }
    if (names == std::vector<std::string>{"L4", "ST", "M", "C4", "BT"}) {
      found_sched2 = true;
    }
  }
  EXPECT_TRUE(found_sched1) << "block-optimal candidate missing";
  EXPECT_TRUE(found_sched2) << "steady-state-optimal candidate missing";
}

TEST(LoopSingle, Fig8SinkFormBreaksTheSymmetry) {
  const DepGraph g = fig8_loop();
  const MachineModel machine = scalar01();
  // §5.2.2 with pivot 3 (the source of both carried edges).
  const LoopCandidate cand = build_loop_candidate(
      g, machine, g.find("3"), /*source_form=*/false, {});
  EXPECT_EQ(names_of(g, cand.order), (std::vector<std::string>{"2", "1", "3"}));
}

TEST(LoopSingle, Fig8GeneralCaseFindsS2) {
  const DepGraph g = fig8_loop();
  const MachineModel machine = scalar01();
  const LoopCandidate best = schedule_single_block_loop(
      g, machine, period_evaluator(g, machine, 1), {});
  EXPECT_DOUBLE_EQ(steady_state_period(g, machine, best.order, 1), 4.0);
}

TEST(LoopSingle, NoCarriedEdgesFallsBackToBlockSchedule) {
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, 1);
  const auto candidates = loop_single_candidates(g, scalar01(), {});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].order, (std::vector<NodeId>{a, b}));
  EXPECT_EQ(candidates[0].pivot, kInvalidNode);
}

TEST(LoopSingle, OrdersAreAlwaysValidPermutations) {
  Prng prng(0x100c);
  for (int trial = 0; trial < 10; ++trial) {
    RandomLoopParams params;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 9));
    params.block.edge_prob = 0.3;
    params.carried_edges = static_cast<int>(prng.uniform(1, 4));
    const DepGraph g = random_loop(prng, params);
    LoopSingleOptions opts;
    opts.prune = LoopSingleOptions::Prune::kNever;
    for (const auto& cand : loop_single_candidates(g, scalar01(), opts)) {
      ASSERT_EQ(cand.order.size(), g.num_nodes());
      // Valid: the loop simulator checks coverage and in-block topology
      // is implied by construction; verify distance-0 edges respected.
      std::vector<std::size_t> pos(g.num_nodes());
      for (std::size_t i = 0; i < cand.order.size(); ++i) {
        pos[cand.order[i]] = i;
      }
      for (const DepEdge& e : g.edges()) {
        if (e.distance == 0) {
          EXPECT_LT(pos[e.from], pos[e.to]);
        }
      }
    }
  }
}

TEST(LoopSingle, GeneralCaseNeverWorseThanBlockOptimalOrder) {
  // The candidate set includes steady-state-aware orders; the selected one
  // must be at least as good as scheduling the block in isolation.
  Prng prng(0x6006);
  const MachineModel machine = scalar01();
  for (int trial = 0; trial < 8; ++trial) {
    RandomLoopParams params;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 8));
    params.block.edge_prob = 0.35;
    params.carried_edges = 2;
    const DepGraph g = random_loop(prng, params);
    const int window = 2;
    LoopSingleOptions opts;
    opts.prune = LoopSingleOptions::Prune::kNever;
    const LoopCandidate best = schedule_single_block_loop(
        g, machine, period_evaluator(g, machine, window), opts);

    // Block-optimal order: rank schedule of the loop-independent subgraph.
    DepGraph li;
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      const NodeInfo& n = g.node(id);
      li.add_node(n.name, n.exec_time, n.fu_class, n.block);
    }
    for (const DepEdge& e : g.edges()) {
      if (e.distance == 0) li.add_edge(e.from, e.to, e.latency, 0);
    }
    const RankScheduler scheduler(li, machine);
    const RankResult r = scheduler.run(
        NodeSet::all(li.num_nodes()),
        uniform_deadlines(li, huge_deadline(li, NodeSet::all(li.num_nodes()))),
        {});
    const double best_period =
        steady_state_period(g, machine, best.order, window);
    const double block_period = steady_state_period(
        g, machine, r.schedule.permutation(), window);
    EXPECT_LE(best_period, block_period + 1e-9) << "trial " << trial;
  }
}

TEST(LoopTrace, RequiresAtLeastTwoBlocks) {
  const DepGraph g = fig3_loop();
  LookaheadOptions opts;
  opts.window = 2;
  EXPECT_DEATH(schedule_loop_trace(g, scalar01(), opts), ">= 2 blocks");
}

TEST(LoopTrace, TwoBlockLoopEmitsAllBlocksOnce) {
  // Two-block loop: block 0 computes, block 1 stores + branches back;
  // carried edges from block 1 to block 0's next instance.
  DepGraph g;
  const NodeId a = g.add_node("a", 1, 0, 0);
  const NodeId b = g.add_node("b", 1, 0, 0);
  const NodeId c = g.add_node("c", 1, 0, 1);
  const NodeId d = g.add_node("d", 1, 0, 1);
  g.add_edge(a, b, 1, 0);
  g.add_edge(b, c, 1, 0);
  g.add_edge(c, d, 0, 0);
  g.add_edge(d, a, 1, 1);  // wrap-around carried dependence
  LookaheadOptions opts;
  opts.window = 3;
  const LookaheadResult res = schedule_loop_trace(g, scalar01(), opts);
  ASSERT_EQ(res.per_block.size(), 2u);
  EXPECT_EQ(res.per_block[0].size(), 2u);
  EXPECT_EQ(res.per_block[1].size(), 2u);
  EXPECT_EQ(res.order.size(), 4u);
  // Steady state must satisfy the carried chain.
  const double p =
      steady_state_period(g, scalar01(), res.priority_list(), opts.window);
  EXPECT_GE(p, 4.0);
}

TEST(LoopTrace, RandomLoopsProduceLegalPerBlockOrders) {
  Prng prng(0x17ac);
  for (int trial = 0; trial < 6; ++trial) {
    // Build a random 2-3 block trace and add carried edges back to block 0.
    RandomTraceParams params;
    params.num_blocks = static_cast<int>(prng.uniform(2, 4));
    params.block.num_nodes = 5;
    params.block.edge_prob = 0.3;
    params.cross_edges = 1;
    DepGraph g = random_trace(prng, params);
    // A couple of carried edges into block 0.
    std::vector<NodeId> block0;
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      if (g.node(id).block == 0) block0.push_back(id);
    }
    for (int k = 0; k < 2; ++k) {
      g.add_edge(static_cast<NodeId>(prng.index(g.num_nodes())),
                 block0[prng.index(block0.size())], 1, 1);
    }
    LookaheadOptions opts;
    opts.window = 3;
    const LookaheadResult res = schedule_loop_trace(g, scalar01(), opts);
    EXPECT_EQ(res.order.size(), g.num_nodes());
    std::vector<std::size_t> pos(g.num_nodes());
    const auto list = res.priority_list();
    ASSERT_EQ(list.size(), g.num_nodes());
    for (std::size_t i = 0; i < list.size(); ++i) pos[list[i]] = i;
    for (const DepEdge& e : g.edges()) {
      if (e.distance == 0 && g.node(e.from).block == g.node(e.to).block) {
        EXPECT_LT(pos[e.from], pos[e.to]);
      }
    }
  }
}

TEST(LoopKernels, AnticipatoryBeatsOrMatchesBlockOptimalOnFig3Ir) {
  // End-to-end: Figure 3 from instructions, on the RS/6000-like machine.
  const DepGraph g = build_loop_graph(partial_product_kernel(), rs6000_like());
  const MachineModel machine = rs6000_like();
  LoopSingleOptions opts;
  opts.prune = LoopSingleOptions::Prune::kNever;
  const LoopCandidate best = schedule_single_block_loop(
      g, machine, period_evaluator(g, machine, 1), opts);
  const double period = steady_state_period(g, machine, best.order, 1);
  EXPECT_LE(period, 6.0);
  EXPECT_GE(period, 5.0);  // bounded below by the M->M recurrence
}

}  // namespace
}  // namespace ais
