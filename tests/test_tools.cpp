// End-to-end tests of the aisc and aislint command-line drivers: invoke the
// real binaries on real assembly files and check their output parses,
// preserves semantics, and reproduces the paper's Figure 3 transformation.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ir/asm_parser.hpp"
#include "ir/interp.hpp"
#include "obs/obs.hpp"

#ifndef AISC_BINARY
#error "AISC_BINARY must point at the aisc executable"
#endif
#ifndef AISLINT_BINARY
#error "AISLINT_BINARY must point at the aislint executable"
#endif
#ifndef AISPROF_BINARY
#error "AISPROF_BINARY must point at the aisprof executable"
#endif
#ifndef AIS_EXAMPLES_DIR
#error "AIS_EXAMPLES_DIR must point at the shipped examples/"
#endif

namespace ais {
namespace {

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << text;
  return path;
}

/// Runs aisc with `args`, returns stdout; fails the test on nonzero exit.
std::string run_aisc(const std::string& args) {
  const std::string out_path = ::testing::TempDir() + "/aisc_out.txt";
  const std::string cmd =
      std::string(AISC_BINARY) + " " + args + " > " + out_path + " 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << cmd;
  std::ifstream in(out_path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Runs a tool command line; returns its exit code and captures stdout.
int run_tool(const std::string& cmd, std::string* out) {
  const std::string out_path = ::testing::TempDir() + "/tool_out.txt";
  const int status =
      std::system((cmd + " > " + out_path + " 2>/dev/null").c_str());
  if (out != nullptr) {
    std::ifstream in(out_path);
    std::ostringstream text;
    text << in.rdbuf();
    *out = text.str();
  }
  return status;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Like run_tool, but also captures stderr (where aisc sends --report,
/// --profile and diagnostics, keeping stdout parseable as assembly).
int run_tool_with_stderr(const std::string& cmd, std::string* out,
                         std::string* err) {
  const std::string out_path = ::testing::TempDir() + "/tool_out.txt";
  const std::string err_path = ::testing::TempDir() + "/tool_err.txt";
  const int status =
      std::system((cmd + " > " + out_path + " 2> " + err_path).c_str());
  if (out != nullptr) *out = slurp(out_path);
  if (err != nullptr) *err = slurp(err_path);
  return status;
}

const char* kFig3 = R"(
block CL.18:
  LDU r6, x[r7+4]
  STU y[r5+4], r0
  CMP c1, r6, 0
  MUL r0, r6, r0
  BT  c1, CL.1
)";

TEST(Aisc, LoopModeReproducesPaperSchedule2) {
  const std::string in = write_temp("fig3.s", kFig3);
  const std::string out =
      run_aisc("--in " + in + " --mode loop --machine rs6000 --window 1");
  const Program prog = parse_program(out);
  ASSERT_EQ(prog.blocks.size(), 1u);
  ASSERT_EQ(prog.blocks[0].insts.size(), 5u);
  // Schedule 2: MUL before CMP.
  EXPECT_EQ(prog.blocks[0].insts[2].op, Opcode::kMul);
  EXPECT_EQ(prog.blocks[0].insts[3].op, Opcode::kCmp);
}

TEST(Aisc, TraceModePreservesSemantics) {
  const char* text = R"(
    block a:
      LI  r1, 5
      LI  r2, 7
      MUL r3, r1, r2
      ADD r4, r3, r1
      CMP c1, r4, 0
      BT  c1, b
    block b:
      SHL r5, r4, 2
      ST  out[r9+0], r5
  )";
  const std::string in = write_temp("trace.s", text);
  const std::string out = run_aisc("--in " + in + " --machine deep");
  const Trace original{parse_program(text).blocks};
  const Trace scheduled{parse_program(out).blocks};
  const InterpState init = InterpState::random(12);
  EXPECT_TRUE(run_trace(scheduled, init) == run_trace(original, init));
}

TEST(Aisc, OutputRoundTripsThroughItself) {
  const std::string in = write_temp("fig3b.s", kFig3);
  const std::string once =
      run_aisc("--in " + in + " --mode loop --window 1");
  const std::string once_path = write_temp("fig3_once.s", once);
  const std::string twice =
      run_aisc("--in " + once_path + " --mode loop --window 1");
  EXPECT_EQ(once, twice);  // scheduling is idempotent through the CLI
}

TEST(Aisc, CfgModeKeepsLayout) {
  const char* text = R"(
    block entry:
      LDU r6, a[r7+4]
      CMP c1, r6, 0
      BT  c1, cold
    block hot:
      ADD r1, r6, r6
      ST  out[r9+0], r1
    block cold:
      SUB r2, r6, r6
  )";
  const std::string in = write_temp("cfg.s", text);
  const std::string out = run_aisc("--in " + in + " --mode cfg");
  const Program prog = parse_program(out);
  ASSERT_EQ(prog.blocks.size(), 3u);
  EXPECT_EQ(prog.blocks[0].label, "entry");
  EXPECT_EQ(prog.blocks[1].label, "hot");
  EXPECT_EQ(prog.blocks[2].label, "cold");
}

TEST(Aisc, RenameFlagKeepsArchitecturalSemantics) {
  const char* text = R"(
    block r:
      LI  r1, 3
      ADD r2, r1, r1
      LI  r1, 9
      ADD r3, r1, r2
  )";
  const std::string in = write_temp("ren.s", text);
  const std::string out = run_aisc("--in " + in + " --rename");
  const Trace original{parse_program(text).blocks};
  const Trace scheduled{parse_program(out).blocks};
  const InterpState init = InterpState::random(3);
  EXPECT_TRUE(run_trace(scheduled, init)
                  .equal_architectural(run_trace(original, init), 128));
}

TEST(Aislint, VerifiesEveryShippedExample) {
  const char* examples[] = {"fig3_loop.s", "two_block_trace.s",
                            "diamond_cfg.s", "memory_alias.s"};
  for (const char* name : examples) {
    const std::string cmd = std::string(AISLINT_BINARY) + " --in " +
                            AIS_EXAMPLES_DIR + "/" + name + " --verify";
    std::string out;
    EXPECT_EQ(run_tool(cmd, &out), 0) << cmd << "\n" << out;
  }
}

TEST(Aislint, RejectsStructurallyBrokenProgram) {
  // A branch in the middle of a block is a lint error, not just a warning.
  const char* text = R"(
    block a:
      LI  r1, 5
      BT  c1, a
      ADD r2, r1, r1
  )";
  const std::string in = write_temp("broken.s", text);
  std::string out;
  EXPECT_NE(run_tool(std::string(AISLINT_BINARY) + " --in " + in, &out), 0);
  EXPECT_NE(out.find("branch-position"), std::string::npos) << out;
}

TEST(Aislint, ListRulesPrintsTheRegistry) {
  std::string out;
  ASSERT_EQ(run_tool(std::string(AISLINT_BINARY) + " --list-rules", &out), 0);
  for (const char* id : {"branch-position", "dead-def", "dep-cycle",
                         "latency-mismatch", "redundant-dep-edge",
                         "schedule-advisor"}) {
    EXPECT_NE(out.find(id), std::string::npos) << id << "\n" << out;
  }
}

TEST(Aislint, GraphInputHonorsRuleSelectionAndExitContract) {
  const std::string fixture =
      std::string(AIS_ANALYSIS_CORPUS_DIR) + "/dep_cycle.dg";
  std::string out;
  // The staged defect is an error: exit 1 with the rule named.
  EXPECT_NE(run_tool(std::string(AISLINT_BINARY) + " --graph " + fixture,
                     &out),
            0);
  EXPECT_NE(out.find("dep-cycle"), std::string::npos) << out;
  // Disabling the rule (or selecting a disjoint one) makes the run clean.
  EXPECT_EQ(run_tool(std::string(AISLINT_BINARY) + " --graph " + fixture +
                         " --no-rule=dep-cycle",
                     &out),
            0);
  EXPECT_EQ(run_tool(std::string(AISLINT_BINARY) + " --graph " + fixture +
                         " --rule=latency-mismatch",
                     &out),
            0);
  // Unknown rule ids are a usage error, not a silent no-op.
  EXPECT_NE(run_tool(std::string(AISLINT_BINARY) + " --graph " + fixture +
                         " --rule=no-such-rule",
                     nullptr),
            0);
}

TEST(Aislint, SarifOutputIsPureAndWerrorPromotes) {
  const std::string example =
      std::string(AIS_EXAMPLES_DIR) + "/fig3_loop.s";
  std::string out;
  run_tool(std::string(AISLINT_BINARY) + " --in " + example + " --sarif",
           &out);
  // Machine output: starts with the SARIF object, no human summary line.
  EXPECT_EQ(out.find('{'), 0u) << out;
  EXPECT_NE(out.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_EQ(out.find("aislint: "), std::string::npos) << out;
  // fig3_loop's use-before-def warnings promote to a failing exit.
  EXPECT_EQ(run_tool(std::string(AISLINT_BINARY) + " --in " + example, &out),
            0);
  EXPECT_NE(run_tool(std::string(AISLINT_BINARY) + " --in " + example +
                         " --Werror=use-before-def",
                     &out),
            0);
}

TEST(Aislint, FixWritesAReducedGraphThatReanalyzesClean) {
  const std::string example =
      std::string(AIS_EXAMPLES_DIR) + "/memory_alias.s";
  const std::string reduced = ::testing::TempDir() + "/reduced.dg";
  std::string out;
  ASSERT_EQ(run_tool(std::string(AISLINT_BINARY) + " --in " + example +
                         " --fix --out " + reduced,
                     &out),
            0);
  EXPECT_NE(out.find("byte-identical"), std::string::npos) << out;
  // The written .dg parses and carries no remaining redundant edges.
  ASSERT_EQ(run_tool(std::string(AISLINT_BINARY) + " --graph " + reduced +
                         " --notes",
                     &out),
            0);
  EXPECT_EQ(out.find("redundant-dep-edge"), std::string::npos) << out;
}

TEST(Aislint, AcceptsAiscOutputAgainstItsSource) {
  const char* text = R"(
    block a:
      LI  r1, 5
      LI  r2, 7
      MUL r3, r1, r2
      ADD r4, r3, r1
      CMP c1, r4, 0
      BT  c1, b
    block b:
      SHL r5, r4, 2
      ST  out[r9+0], r5
  )";
  const std::string in = write_temp("lint_src.s", text);
  const std::string compiled = run_aisc("--in " + in + " --machine rs6000");
  const std::string out_path = write_temp("lint_out.s", compiled);
  const std::string cmd = std::string(AISLINT_BINARY) + " --in " + in +
                          " --against " + out_path + " --machine rs6000";
  std::string out;
  EXPECT_EQ(run_tool(cmd, &out), 0) << out;
}

TEST(Aisc, QuietWithoutTelemetryFlags) {
  const std::string example =
      std::string(AIS_EXAMPLES_DIR) + "/two_block_trace.s";
  std::string out, err;
  ASSERT_EQ(run_tool_with_stderr(std::string(AISC_BINARY) + " --in " + example,
                                 &out, &err),
            0);
  EXPECT_TRUE(err.empty()) << err;  // telemetry is strictly opt-in
}

TEST(Aisc, ProfileFlagPrintsPhaseTableAndCounters) {
  if (!obs::kHooksCompiledIn) {
    GTEST_SKIP() << "pipeline instrumentation compiled out (AIS_OBS=OFF)";
  }
  const std::string example =
      std::string(AIS_EXAMPLES_DIR) + "/two_block_trace.s";
  std::string out, err;
  ASSERT_EQ(run_tool_with_stderr(std::string(AISC_BINARY) + " --in " +
                                     example + " --profile",
                                 &out, &err),
            0);
  // stdout still carries the schedule; the profile goes to stderr.
  EXPECT_FALSE(parse_program(out).blocks.empty());
  EXPECT_NE(err.find("pipeline profile"), std::string::npos) << err;
  for (const char* phase :
       {"rank", "move_idle", "merge", "chop", "emit", "lookahead"}) {
    EXPECT_NE(err.find(phase), std::string::npos) << "missing phase " << phase
                                                  << " in:\n" << err;
  }
  // The acceptance bar: at least 8 distinct counters in the report.
  int counters = 0;
  for (const char* name :
       {"rank.runs", "rank.nodes_ranked", "merge.calls", "merge.relax_rounds",
        "move_idle.attempts", "move_idle.moved", "chop.calls", "chop.points",
        "lookahead.blocks", "lookahead.window_span_gt_w"}) {
    if (err.find(name) != std::string::npos) ++counters;
  }
  EXPECT_GE(counters, 8) << err;
}

TEST(Aisc, TraceJsonWritesPerfettoLoadableFile) {
  if (!obs::kHooksCompiledIn) {
    GTEST_SKIP() << "pipeline instrumentation compiled out (AIS_OBS=OFF)";
  }
  const std::string example =
      std::string(AIS_EXAMPLES_DIR) + "/two_block_trace.s";
  const std::string trace = ::testing::TempDir() + "/aisc_trace.json";
  std::string out, err;
  ASSERT_EQ(run_tool_with_stderr(std::string(AISC_BINARY) + " --in " +
                                     example + " --trace-json " + trace,
                                 &out, &err),
            0);
  const std::string json = slurp(trace);
  ASSERT_FALSE(json.empty());
  // Structural spot checks; test_obs.cpp certifies the JSON grammar and the
  // CI telemetry job runs a real JSON parser over the same output.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank\""), std::string::npos);
}

TEST(Aisprof, FileReportCoversPhasesStatsAndStalls) {
  const std::string example =
      std::string(AIS_EXAMPLES_DIR) + "/two_block_trace.s";
  std::string out;
  ASSERT_EQ(run_tool(std::string(AISPROF_BINARY) + " --in " + example, &out),
            0);
  for (const char* section :
       {"compile:", "cycles:", "schedule stats", "stall attribution",
        "window occupancy histogram"}) {
    EXPECT_NE(out.find(section), std::string::npos)
        << "missing '" << section << "' in:\n" << out;
  }
}

TEST(Aisprof, WindowSpanSurveyReportsFractions) {
  std::string out;
  ASSERT_EQ(run_tool(std::string(AISPROF_BINARY) +
                         " --random-traces 10 --blocks 2 --nodes 6",
                     &out),
            0);
  EXPECT_NE(out.find("window-span survey"), std::string::npos) << out;
  EXPECT_NE(out.find("span > W fraction"), std::string::npos) << out;
}

TEST(Aislint, RejectsCorruptedCompilation) {
  const char* text = R"(
    block a:
      LI  r1, 5
      MUL r3, r1, r1
      ADD r4, r3, r1
  )";
  // A "compilation" that reverses the dependent chain must be rejected.
  const char* corrupted = R"(
    block a:
      ADD r4, r3, r1
      MUL r3, r1, r1
      LI  r1, 5
  )";
  const std::string in = write_temp("lint_good.s", text);
  const std::string bad = write_temp("lint_bad.s", corrupted);
  const std::string cmd = std::string(AISLINT_BINARY) + " --in " + in +
                          " --against " + bad;
  std::string out;
  EXPECT_NE(run_tool(cmd, &out), 0);
  EXPECT_NE(out.find("dep-order"), std::string::npos) << out;
}

}  // namespace
}  // namespace ais
