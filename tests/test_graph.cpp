// Unit tests for the dependence-graph substrate.
#include <gtest/gtest.h>

#include "graph/closure.hpp"
#include "graph/critpath.hpp"
#include "graph/depgraph.hpp"
#include "graph/dot.hpp"
#include "graph/nodeset.hpp"
#include "graph/topo.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

DepGraph diamond() {
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  const NodeId d = g.add_node("d");
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 0);
  g.add_edge(b, d, 1);
  g.add_edge(c, d, 0);
  return g;
}

TEST(DepGraph, BasicAccessors) {
  DepGraph g = diamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.node(0).name, "a");
  EXPECT_EQ(g.find("d"), NodeId{3});
  EXPECT_EQ(g.find("zz"), kInvalidNode);
  EXPECT_FALSE(g.has_carried_edges());
  EXPECT_EQ(g.max_latency(), 1);
  EXPECT_EQ(g.total_work(), 4);
  EXPECT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.in_edges(3).size(), 2u);
}

TEST(DepGraph, NameInterningAndIndex) {
  DepGraph g;
  const NodeId a0 = g.add_node("load_a");
  const NodeId b = g.add_node("store_b");
  const NodeId a1 = g.add_node("load_a");  // duplicate name, distinct node
  EXPECT_EQ(a0, NodeId{0});
  EXPECT_EQ(b, NodeId{1});
  EXPECT_EQ(a1, NodeId{2});

  // Duplicate names intern to the same pooled bytes; ids stay dense.
  EXPECT_EQ(g.name(a0).view(), g.name(a1).view());
  EXPECT_EQ(g.name(a0).c_str(), g.name(a1).c_str());

  // find() resolves through the hash index; duplicates yield the first id.
  EXPECT_EQ(g.find("load_a"), a0);
  EXPECT_EQ(g.find("store_b"), b);
  EXPECT_EQ(g.find("missing"), kInvalidNode);

  // Growth past the initial index capacity keeps every name findable, and
  // NameRef views stay valid (pool storage is stable under growth).
  const NameRef early = g.name(a0);
  for (int i = 0; i < 200; ++i) g.add_node("n" + std::to_string(i));
  EXPECT_EQ(g.find("n0"), NodeId{3});
  EXPECT_EQ(g.find("n199"), NodeId{202});
  EXPECT_EQ(g.find("load_a"), a0);
  EXPECT_EQ(early.view(), "load_a");

  // Copies re-intern: same names and find() results, independent storage.
  const DepGraph copy = g;
  EXPECT_EQ(copy.find("n123"), g.find("n123"));
  EXPECT_EQ(copy.name(a1).view(), "load_a");
  EXPECT_NE(copy.name(a0).c_str(), g.name(a0).c_str());
  EXPECT_EQ(copy.name(a0).c_str(), copy.name(a1).c_str());
}

TEST(DepGraph, SoAColumnsMirrorNodeInfo) {
  DepGraph g;
  g.add_node("a", /*exec_time=*/3, /*fu_class=*/1, /*block=*/2);
  g.add_node("b");
  ASSERT_EQ(g.exec_times().size(), 2u);
  EXPECT_EQ(g.exec_times()[0], 3);
  EXPECT_EQ(g.fu_classes()[0], 1);
  EXPECT_EQ(g.blocks()[0], 2);
  EXPECT_EQ(g.exec_times()[1], 1);
  EXPECT_EQ(g.node(0).exec_time, 3);
  EXPECT_EQ(g.node(0).fu_class, 1);
  EXPECT_EQ(g.node(0).block, 2);
}

TEST(DepGraph, CarriedEdgeBookkeeping) {
  DepGraph g = fig3_loop();
  EXPECT_TRUE(g.has_carried_edges());
  EXPECT_EQ(g.max_latency(), 4);
}

TEST(NodeSet, InsertEraseUnion) {
  NodeSet a(10, {1, 3});
  NodeSet b(10, {3, 7});
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.contains(3));
  a.erase(3);
  EXPECT_FALSE(a.contains(3));
  const NodeSet u = set_union(a, b);
  EXPECT_EQ(u.ids(), (std::vector<NodeId>{1, 3, 7}));
  EXPECT_EQ(NodeSet::all(4).size(), 4u);
}

TEST(Topo, OrdersRespectEdges) {
  DepGraph g = diamond();
  const auto order = topo_order(g, NodeSet::all(4));
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (const DepEdge& e : g.edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

TEST(Topo, DetectsCycle) {
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_FALSE(is_acyclic(g, NodeSet::all(2)));
}

TEST(Topo, CarriedEdgesDoNotFormCycles) {
  DepGraph g = fig3_loop();  // has carried self-loops
  EXPECT_TRUE(is_acyclic(g, NodeSet::all(g.num_nodes())));
}

TEST(Topo, SubsetRestriction) {
  DepGraph g = diamond();
  const auto order = topo_order(g, NodeSet(4, {1, 3}));
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<NodeId>{1, 3}));
}

TEST(Closure, DescendantsAreTransitive) {
  DepGraph g = diamond();
  const DescendantClosure closure(g, NodeSet::all(4));
  EXPECT_TRUE(closure.reaches(0, 3));
  EXPECT_TRUE(closure.reaches(0, 1));
  EXPECT_FALSE(closure.reaches(1, 2));
  EXPECT_EQ(closure.descendants(0).count(), 3u);
  EXPECT_EQ(closure.descendants(3).count(), 0u);
}

TEST(Closure, Fig1Descendants) {
  DepGraph g = fig1_bb1();
  const DescendantClosure closure(g, NodeSet::all(g.num_nodes()));
  // x reaches w, b, r, a; e reaches w, b, a (but not r).
  EXPECT_EQ(closure.descendants(g.find("x")).count(), 4u);
  EXPECT_EQ(closure.descendants(g.find("e")).count(), 3u);
  EXPECT_FALSE(closure.reaches(g.find("e"), g.find("r")));
}

TEST(CritPath, LatencyWeightedLongestPath) {
  DepGraph g = diamond();
  const auto len = critical_path_lengths(g, NodeSet::all(4));
  // a -> b (lat 1) -> d (lat 1): 1 + 1 + 1 + 1 + 1 = 5.
  EXPECT_EQ(len[0], 5);
  EXPECT_EQ(len[1], 3);
  EXPECT_EQ(len[2], 1 + 0 + 1);
  EXPECT_EQ(len[3], 1);
  EXPECT_EQ(critical_path(g, NodeSet::all(4)), 5);
}

TEST(Dot, MentionsNodesAndCarriedStyle) {
  const std::string dot = to_dot(fig3_loop(), "fig3");
  EXPECT_NE(dot.find("label=\"L4\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("<4,1>"), std::string::npos);
}

TEST(RandomGraphs, BlockIsAcyclicAndSized) {
  Prng prng(1234);
  RandomBlockParams params;
  params.num_nodes = 20;
  params.edge_prob = 0.3;
  const DepGraph g = random_block(prng, params);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_TRUE(is_acyclic(g, NodeSet::all(20)));
}

TEST(RandomGraphs, LayeredBlockOnlyAdjacentLayers) {
  Prng prng(99);
  RandomBlockParams params;
  params.num_nodes = 12;
  params.edge_prob = 1.0;
  params.layers = 3;
  const DepGraph g = random_block(prng, params);
  EXPECT_TRUE(is_acyclic(g, NodeSet::all(12)));
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(RandomGraphs, TraceHasBlocksAndCrossEdges) {
  Prng prng(5);
  RandomTraceParams params;
  params.num_blocks = 3;
  params.block.num_nodes = 6;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  EXPECT_EQ(g.num_nodes(), 18u);
  int cross = 0;
  for (const DepEdge& e : g.edges()) {
    EXPECT_LE(g.node(e.from).block, g.node(e.to).block);
    if (g.node(e.from).block != g.node(e.to).block) ++cross;
  }
  EXPECT_EQ(cross, 4);
}

TEST(RandomGraphs, LoopHasCarriedEdges) {
  Prng prng(6);
  RandomLoopParams params;
  params.block.num_nodes = 8;
  params.carried_edges = 3;
  const DepGraph g = random_loop(prng, params);
  EXPECT_TRUE(g.has_carried_edges());
  EXPECT_TRUE(is_acyclic(g, NodeSet::all(8)));
}

TEST(RandomGraphs, MachineBlockUsesMachineTimings) {
  Prng prng(77);
  const MachineModel m = vliw4();
  const DepGraph g = random_machine_block(prng, m, 30, 0.2);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    EXPECT_LT(g.node(id).fu_class, m.num_fu_classes());
    EXPECT_GE(g.node(id).exec_time, 1);
  }
  EXPECT_TRUE(is_acyclic(g, NodeSet::all(30)));
}

TEST(RandomGraphs, DeterministicAcrossRuns) {
  Prng p1(42);
  Prng p2(42);
  RandomBlockParams params;
  params.num_nodes = 15;
  const DepGraph a = random_block(p1, params);
  const DepGraph b = random_block(p2, params);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edge(i).from, b.edge(i).from);
    EXPECT_EQ(a.edge(i).to, b.edge(i).to);
    EXPECT_EQ(a.edge(i).latency, b.edge(i).latency);
  }
}

}  // namespace
}  // namespace ais
