// Deliberate-crash fixture for the flight recorder (run as a subprocess by
// test_metrics.cpp): enables the recorder, leaves a recognizable trail of
// span events plus one live counter, then aborts from inside a phase.  The
// SIGABRT handler must write a parseable dump naming the crashing phase.
#include <cstdlib>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"

int main() {
  using namespace ais;
  obs::init_from_env();  // AIS_FLIGHT_DIR from the test's environment
  obs::set_flight_enabled(true);
  obs::set_enabled(true);
  obs::count("fixture.heartbeat", 41);
  { AIS_OBS_SPAN("fixture.warmup"); }
  AIS_OBS_SPAN("doomed.phase");
  obs::count("fixture.heartbeat");
  std::abort();  // the span never closes; its 'B' event must be in the dump
}
