// The independent verifier, tested three ways: cross-certification of the
// two dependence analyses (verify/ir_deps vs ir/depbuild) on random
// programs, unit tests of every lint rule, and mutation testing — corrupted
// schedules must be rejected with the *specific* diagnostic code for the
// invariant they break.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/bruteforce.hpp"
#include "core/deadlines.hpp"
#include "core/legality.hpp"
#include "core/lookahead.hpp"
#include "core/merge.hpp"
#include "core/rank.hpp"
#include "driver/anticipatory.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "support/prng.hpp"
#include "verify/ir_deps.hpp"
#include "verify/lint.hpp"
#include "verify/schedule_check.hpp"
#include "verify/verify.hpp"
#include "workloads/random_ir.hpp"

namespace ais {
namespace {

using verify::Report;
using verify::derive_trace_deps;

// A two-block trace with true, anti, output, memory and control
// dependences: B2's ST -> LD pair (same tag) carries a memory dependence,
// and the final ADD overwrites r1 (read earlier -> anti, written by the
// LI -> output).
const char* kTwoBlock = R"(
block B1:
  LI  r1, 8
  ADD r2, r1, r1
  LD  r3, a[r2+0]
  CMP c1, r3, 0
  SHL r4, r3, 1
  BT  c1, B2
block B2:
  MUL r5, r4, r3
  ADD r6, r5, r1
  ST  a[r2+8], r6
  LD  r8, a[r2+16]
  SUB r7, r6, r4
  ADD r1, r7, r7
)";

Trace parse_trace(const char* text) { return Trace{parse_program(text).blocks}; }

using EdgeSet = std::set<std::tuple<int, int, int>>;

EdgeSet depbuild_edges(const DepGraph& g) {
  EdgeSet out;
  for (const DepEdge& e : g.edges()) {
    if (e.distance == 0) {
      out.insert({static_cast<int>(e.from), static_cast<int>(e.to), e.latency});
    }
  }
  return out;
}

EdgeSet derived_edges(const std::vector<verify::IrDep>& deps) {
  // depbuild dedups by (from, to) keeping the max latency; collapse the
  // per-kind dependences the same way before comparing.
  std::map<std::pair<int, int>, int> strongest;
  for (const verify::IrDep& d : deps) {
    auto [it, inserted] = strongest.emplace(std::make_pair(d.from, d.to),
                                            d.latency);
    if (!inserted) it->second = std::max(it->second, d.latency);
  }
  EdgeSet out;
  for (const auto& [pair, latency] : strongest) {
    out.insert({pair.first, pair.second, latency});
  }
  return out;
}

// ---- Cross-certification: two dependence analyses, one answer ------------

TEST(IrDeps, AgreesWithDepbuildOnRandomPrograms) {
  Prng prng(0xfee1);
  for (const auto make : {scalar01, rs6000_like, deep_pipeline, vliw4}) {
    const MachineModel machine = make();
    for (int trial = 0; trial < 12; ++trial) {
      RandomIrParams params;
      params.num_insts = static_cast<int>(prng.uniform(3, 12));
      const int blocks = static_cast<int>(prng.uniform(1, 4));
      const Trace trace = random_ir_trace(prng, params, blocks);
      const DepGraph g = build_trace_graph(trace, machine);
      EXPECT_EQ(depbuild_edges(g), derived_edges(derive_trace_deps(
                                       trace, machine)))
          << machine.name() << " trial " << trial;
    }
  }
}

TEST(IrDeps, AgreesWithDepbuildWithoutMemoryDisambiguation) {
  Prng prng(0xfee2);
  const MachineModel machine = rs6000_like();
  DepBuildOptions opts;
  opts.disambiguate_memory = false;
  for (int trial = 0; trial < 12; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 10));
    params.mem_frac = 0.6;
    const Trace trace = random_ir_trace(prng, params, 2);
    const DepGraph g = build_trace_graph(trace, machine, opts);
    EXPECT_EQ(depbuild_edges(g),
              derived_edges(derive_trace_deps(trace, machine, false)))
        << "trial " << trial;
  }
}

TEST(IrDeps, FixtureCarriesEveryDependenceKind) {
  const Trace trace = parse_trace(kTwoBlock);
  const auto deps = derive_trace_deps(trace, rs6000_like());
  std::set<verify::DepKind> kinds;
  for (const verify::IrDep& d : deps) kinds.insert(d.kind);
  EXPECT_TRUE(kinds.count(verify::DepKind::kTrue));
  EXPECT_TRUE(kinds.count(verify::DepKind::kAnti));
  EXPECT_TRUE(kinds.count(verify::DepKind::kOutput));
  EXPECT_TRUE(kinds.count(verify::DepKind::kMemory));
  EXPECT_TRUE(kinds.count(verify::DepKind::kControl));
}

TEST(IrDeps, GraphFromIrMatchesTraceShape) {
  const Trace trace = parse_trace(kTwoBlock);
  const MachineModel machine = rs6000_like();
  const DepGraph g =
      verify::graph_from_ir(trace, machine, derive_trace_deps(trace, machine));
  ASSERT_EQ(g.num_nodes(), trace.num_insts());
  EXPECT_EQ(g.node(0).block, 0);
  EXPECT_EQ(g.node(g.num_nodes() - 1).block, 1);
  // Same pair set as depbuild's graph (latencies collapse identically).
  EXPECT_EQ(depbuild_edges(g),
            depbuild_edges(build_trace_graph(trace, machine)));
}

// ---- Lint rules ----------------------------------------------------------

TEST(Lint, CleanProgramHasNoErrors) {
  const Report r = verify::lint_program(parse_program(kTwoBlock));
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Lint, BranchNotLastIsAnError) {
  Program prog;
  BasicBlock bb;
  bb.label = "e";
  bb.insts.push_back(Instruction::cmp(cr(1), gpr(1)));
  bb.insts.push_back(Instruction::branch(Opcode::kBt, cr(1), "e"));
  bb.insts.push_back(Instruction::alu(Opcode::kAdd, gpr(2), gpr(1), gpr(1)));
  prog.blocks.push_back(bb);
  const Report r = verify::lint_program(prog);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("branch-position")) << r.to_string();
}

TEST(Lint, ConditionalBranchWithoutConditionIsAnError) {
  Program prog;
  BasicBlock bb;
  bb.label = "e";
  Instruction bt;
  bt.op = Opcode::kBt;
  bt.target = "e";
  bb.insts.push_back(bt);
  prog.blocks.push_back(bb);
  const Report r = verify::lint_program(prog);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("branch-operand")) << r.to_string();
}

TEST(Lint, UnconditionalBranchWithOperandIsAnError) {
  Program prog;
  BasicBlock bb;
  bb.label = "e";
  Instruction b;
  b.op = Opcode::kB;
  b.uses.push_back(cr(0));
  b.target = "e";
  bb.insts.push_back(b);
  prog.blocks.push_back(bb);
  const Report r = verify::lint_program(prog);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("branch-operand")) << r.to_string();
}

TEST(Lint, BranchWithoutTargetIsAnError) {
  Program prog;
  BasicBlock bb;
  bb.label = "e";
  Instruction b;
  b.op = Opcode::kB;
  bb.insts.push_back(b);
  prog.blocks.push_back(bb);
  const Report r = verify::lint_program(prog);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("branch-no-target")) << r.to_string();
}

TEST(Lint, DuplicateLabelIsAnError) {
  const Report r = verify::lint_program(parse_program(R"(
block L:
  LI r1, 1
block L:
  LI r2, 2
)"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("duplicate-label")) << r.to_string();
}

TEST(Lint, UnknownBranchTargetIsOnlyAWarning) {
  const Report r = verify::lint_program(parse_program(R"(
block e:
  CMP c1, r1, 0
  BT  c1, elsewhere
)"));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_TRUE(r.has("branch-target-unknown"));
}

TEST(Lint, UnreachableBlockIsAWarning) {
  // entry jumps unconditionally over `skipped`; unconditional branches do
  // not fall through.
  const Report r = verify::lint_program(parse_program(R"(
block entry:
  B join
block skipped:
  LI r1, 1
block join:
  LI r2, 2
)"));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_TRUE(r.has("unreachable-block"));
}

TEST(Lint, UseBeforeDefIsAWarning) {
  const Report r = verify::lint_program(parse_program(R"(
block e:
  ADD r2, r1, r1
  LI  r1, 3
)"));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_TRUE(r.has("use-before-def"));
}

TEST(Lint, DeadWriteIsAWarningWithinABlock) {
  const Report r = verify::lint_program(parse_program(R"(
block e:
  LI r1, 1
  LI r1, 2
  ADD r2, r1, r1
)"));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_TRUE(r.has("dead-write"));
}

TEST(Lint, WritesOnDifferentBlocksAreNotDead) {
  // The two writes may sit on mutually exclusive paths — no warning.
  const Report r = verify::lint_program(parse_program(R"(
block a:
  LI r1, 1
block b:
  LI r1, 2
  ADD r2, r1, r1
)"));
  EXPECT_FALSE(r.has("dead-write")) << r.to_string();
}

TEST(Lint, EmptyBlockIsAWarning) {
  Program prog;
  prog.blocks.push_back(BasicBlock{"empty", {}});
  const Report r = verify::lint_program(prog);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.has("empty-block")) << r.to_string();
}

// ---- Mutation testing: emitted-code invariants ---------------------------
//
// Each mutation corrupts a correct compilation in one specific way; the
// verifier must reject it *with the code naming that invariant*.

class EmittedMutation : public ::testing::Test {
 protected:
  void SetUp() override {
    original_ = parse_trace(kTwoBlock);
    mutated_ = original_;  // identity compilation is legal (source order)
  }

  Report check() const {
    return verify::check_emitted(original_, mutated_, rs6000_like());
  }

  void expect_rejected(const char* code) const {
    const Report r = check();
    EXPECT_FALSE(r.ok()) << "mutation was accepted";
    EXPECT_TRUE(r.has(code)) << "expected '" << code << "', got:\n"
                             << r.to_string();
  }

  Trace original_;
  Trace mutated_;
};

TEST_F(EmittedMutation, IdentityIsAccepted) {
  const Report r = check();
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST_F(EmittedMutation, SwappedTrueDependenceIsRejected) {
  // ADD r2 (producer) after LD r3, a[r2] (consumer).
  std::swap(mutated_.blocks[0].insts[1], mutated_.blocks[0].insts[2]);
  expect_rejected("dep-order");
}

TEST_F(EmittedMutation, ReversedBlockIsRejected) {
  auto& insts = mutated_.blocks[1].insts;
  std::reverse(insts.begin(), insts.end());
  expect_rejected("dep-order");
}

TEST_F(EmittedMutation, SwappedMemoryDependenceIsRejected) {
  // ST a[r2+8] and LD r8, a[r2+16] share tag `a`: store -> load ordering.
  std::swap(mutated_.blocks[1].insts[2], mutated_.blocks[1].insts[3]);
  expect_rejected("dep-order");
}

TEST_F(EmittedMutation, InstructionMovedToNextBlockIsRejected) {
  // SHL r4 hoisted out of B1 into B2: cross-block motion is exactly what
  // anticipatory scheduling exists to avoid.
  auto& b1 = mutated_.blocks[0].insts;
  auto& b2 = mutated_.blocks[1].insts;
  b2.insert(b2.begin(), b1[4]);
  b1.erase(b1.begin() + 4);
  expect_rejected("cross-block-motion");
}

TEST_F(EmittedMutation, InstructionMovedToPreviousBlockIsRejected) {
  // MUL r5 pulled up into B1 (before the branch).
  auto& b1 = mutated_.blocks[0].insts;
  auto& b2 = mutated_.blocks[1].insts;
  b1.insert(b1.begin() + 5, b2[0]);
  b2.erase(b2.begin());
  expect_rejected("cross-block-motion");
}

TEST_F(EmittedMutation, DroppedInstructionIsRejected) {
  mutated_.blocks[1].insts.pop_back();
  expect_rejected("block-structure");
}

TEST_F(EmittedMutation, DuplicatedInstructionIsRejected) {
  auto& insts = mutated_.blocks[1].insts;
  insts.push_back(insts[1]);
  expect_rejected("block-structure");
}

TEST_F(EmittedMutation, ForeignInstructionIsRejected) {
  mutated_.blocks[0].insts[0] =
      Instruction::alu(Opcode::kXor, gpr(9), gpr(9), gpr(9));
  expect_rejected("block-structure");
}

TEST_F(EmittedMutation, RenamedLabelIsRejected) {
  mutated_.blocks[1].label = "BX";
  expect_rejected("block-structure");
}

TEST_F(EmittedMutation, DroppedBlockIsRejected) {
  mutated_.blocks.pop_back();
  expect_rejected("block-structure");
}

TEST_F(EmittedMutation, BranchMovedOffTheEndIsRejected) {
  // BT hoisted to the top of B1.
  auto& insts = mutated_.blocks[0].insts;
  std::rotate(insts.begin(), insts.end() - 1, insts.end());
  expect_rejected("branch-position");
}

TEST_F(EmittedMutation, InstructionAfterBranchIsRejected) {
  std::swap(mutated_.blocks[0].insts[4], mutated_.blocks[0].insts[5]);
  expect_rejected("branch-position");
}

// ---- Mutation testing: planning-permutation invariants -------------------

class PlanningMutation : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = parse_trace(kTwoBlock);
    scheduled_ = schedule(trace_, rs6000_like(), /*window=*/2);
  }

  const DepGraph& graph() const { return scheduled_.graph; }

  Trace trace_;
  ScheduledTrace scheduled_{};
};

TEST_F(PlanningMutation, ProductionOutputIsAccepted) {
  const Report r =
      verify::check_planning(graph(), scheduled_.detail.order,
                             scheduled_.detail.per_block, scheduled_.window);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST_F(PlanningMutation, MissingNodeIsRejected) {
  auto order = scheduled_.detail.order;
  order.pop_back();
  const Report r = verify::check_order(graph(), order);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("order-coverage")) << r.to_string();
}

TEST_F(PlanningMutation, DuplicatedNodeIsRejected) {
  auto order = scheduled_.detail.order;
  order[order.size() - 1] = order[0];
  const Report r = verify::check_order(graph(), order);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("order-coverage")) << r.to_string();
}

TEST_F(PlanningMutation, ReversedOrderIsRejected) {
  auto order = scheduled_.detail.order;
  std::reverse(order.begin(), order.end());
  const Report r = verify::check_order(graph(), order);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("dep-order")) << r.to_string();
}

TEST_F(PlanningMutation, WindowOverrunIsRejected) {
  // A block-1 node ahead of all six block-0 nodes: the inversion spans 7,
  // far beyond W = 2.  (Dependences are ignored here on purpose — the
  // window check is independent of them.)
  std::vector<NodeId> perm;
  perm.push_back(6);
  for (NodeId id = 0; id < graph().num_nodes(); ++id) {
    if (id != 6) perm.push_back(id);
  }
  const Report r = verify::check_window(graph(), perm, /*window=*/2);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("window-span")) << r.to_string();
}

TEST_F(PlanningMutation, SpanExactlyWindowIsAccepted) {
  // One block-1 node one slot early: span 2 fits W = 2 but not W = 1.
  std::vector<NodeId> perm;
  for (NodeId id = 0; id < graph().num_nodes(); ++id) perm.push_back(id);
  std::swap(perm[5], perm[6]);  // last B1 node after first B2 node
  EXPECT_TRUE(verify::check_window(graph(), perm, 2).ok());
  const Report r = verify::check_window(graph(), perm, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("window-span")) << r.to_string();
}

TEST_F(PlanningMutation, SwappedPerBlockListsAreRejected) {
  auto per_block = scheduled_.detail.per_block;
  std::swap(per_block[0], per_block[1]);
  const Report r = verify::check_planning(graph(), scheduled_.detail.order,
                                          per_block, scheduled_.window);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("subpermutation")) << r.to_string();
}

TEST_F(PlanningMutation, ReorderedSubpermutationIsRejected) {
  auto per_block = scheduled_.detail.per_block;
  ASSERT_GE(per_block[1].size(), 2u);
  std::swap(per_block[1][0], per_block[1][1]);
  const Report r = verify::check_planning(graph(), scheduled_.detail.order,
                                          per_block, scheduled_.window);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("subpermutation")) << r.to_string();
}

// ---- Mutation testing: timed-schedule invariants -------------------------

class ScheduleMutation : public ::testing::Test {
 protected:
  ScheduleMutation() {
    // A (int) -> B (int, latency 2); C is floating-point.
    a_ = g_.add_node("A", 1, /*fu_class=*/0, 0);
    b_ = g_.add_node("B", 1, /*fu_class=*/0, 0);
    c_ = g_.add_node("C", 1, /*fu_class=*/1, 0);
    g_.add_edge(a_, b_, /*latency=*/2, 0);
  }

  DepGraph g_;
  NodeId a_ = 0, b_ = 0, c_ = 0;
  MachineModel machine_ = rs6000_like();  // fxu + fpu + bu, issue width 1
};

TEST_F(ScheduleMutation, WellFormedScheduleIsAccepted) {
  Schedule s(&g_, NodeSet::all(3), machine_.total_units());
  s.place(a_, 0, 0);
  s.place(c_, 1, 1);
  s.place(b_, 3, 0);  // completion(A)=1, +2 latency
  const Report r = verify::check_schedule(s, machine_);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST_F(ScheduleMutation, UnplacedNodeIsRejected) {
  Schedule s(&g_, NodeSet::all(3), machine_.total_units());
  s.place(a_, 0, 0);
  const Report r = verify::check_schedule(s, machine_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("incomplete")) << r.to_string();
}

TEST_F(ScheduleMutation, WrongUnitCountIsRejected) {
  Schedule s(&g_, NodeSet::all(3), machine_.total_units() + 1);
  s.place(a_, 0, 0);
  s.place(c_, 1, 1);
  s.place(b_, 3, 0);
  const Report r = verify::check_schedule(s, machine_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("unit-count")) << r.to_string();
}

TEST_F(ScheduleMutation, WrongUnitClassIsRejected) {
  Schedule s(&g_, NodeSet::all(3), machine_.total_units());
  s.place(a_, 0, 1);  // integer op on the floating-point unit
  s.place(c_, 1, 1);
  s.place(b_, 3, 0);
  const Report r = verify::check_schedule(s, machine_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("unit-class")) << r.to_string();
}

TEST_F(ScheduleMutation, IssueWidthOverrunIsRejected) {
  // Two instructions issued in cycle 0 on a single-issue machine.
  Schedule s(&g_, NodeSet::all(3), machine_.total_units());
  s.place(a_, 0, 0);
  s.place(c_, 0, 1);
  s.place(b_, 3, 0);
  const Report r = verify::check_schedule(s, machine_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("issue-width")) << r.to_string();
}

TEST_F(ScheduleMutation, LatencyViolationIsRejected) {
  Schedule s(&g_, NodeSet::all(3), machine_.total_units());
  s.place(a_, 0, 0);
  s.place(b_, 1, 0);  // needs completion(A) + 2 = 3
  s.place(c_, 2, 1);
  const Report r = verify::check_schedule(s, machine_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("dep-latency")) << r.to_string();
}

// ---- Mutation testing: Merge's idle-slot-fill invariant ------------------

TEST(MergeFill, DisplacedOldNodeIsRejected) {
  DepGraph g;
  g.add_node("old", 1, 0, 0);
  g.add_node("new", 1, 0, 1);
  Schedule s(&g, NodeSet::all(2), 1);
  // The new-block node takes cycle 0 and pushes the old node to cycle 1 —
  // it displaced the retained suffix instead of filling an idle slot.
  s.place(1, 0, 0);
  s.place(0, 1, 0);
  const NodeSet old_nodes(2, {0});
  const DeadlineMap deadlines = uniform_deadlines(g, 1);  // old cap: cycle 1
  const Report r = verify::check_merge_fill(s, old_nodes, deadlines,
                                            /*t_old=*/1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("merge-displaced")) << r.to_string();
}

TEST(MergeFill, UnplacedOldNodeIsRejected) {
  DepGraph g;
  g.add_node("old", 1, 0, 0);
  Schedule s(&g, NodeSet::all(1), 1);
  const NodeSet old_nodes(1, {0});
  const Report r = verify::check_merge_fill(s, old_nodes,
                                            uniform_deadlines(g, 5), 5);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("incomplete")) << r.to_string();
}

TEST(MergeFill, RealMergePreservesTheInvariant) {
  // Procedure Merge itself must never displace the retained suffix: run it
  // on random two-block traces and re-check with the independent oracle.
  Prng prng(0x4aa);
  const MachineModel machine = scalar01();
  for (int trial = 0; trial < 10; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 9));
    const Trace trace = random_ir_trace(prng, params, 2);
    const DepGraph g = build_trace_graph(trace, machine);
    const RankScheduler scheduler(g, machine);
    const auto blocks = blocks_of(g);
    ASSERT_EQ(blocks.size(), 2u);
    const Time huge = huge_deadline(g, NodeSet::all(g.num_nodes()));

    DeadlineMap d = uniform_deadlines(g, huge);
    const RankResult alone = scheduler.run(blocks[0], d, {});
    for (const NodeId id : blocks[0].ids()) d[id] = alone.makespan;
    const MergeResult m = merge_blocks(scheduler, blocks[0], blocks[1], d,
                                       alone.makespan, huge, {});
    const Report r =
        verify::check_merge_fill(m.schedule, blocks[0], d, alone.makespan);
    EXPECT_TRUE(r.ok()) << "trial " << trial << "\n" << r.to_string();
  }
}

// ---- Optimality certificates ---------------------------------------------

TEST(Optimality, ImpossiblyFastCompletionIsAnError) {
  const Trace trace = parse_trace(kTwoBlock);
  const MachineModel machine = scalar01();
  const DepGraph g =
      verify::graph_from_ir(trace, machine, derive_trace_deps(trace, machine));
  // 11 unit-time instructions on one unit cannot finish in 3 cycles.
  const auto cert = verify::certify_trace_completion(g, machine, 4, 3);
  EXPECT_EQ(cert.status,
            verify::OptimalityCertificate::Status::kViolated);
  Report r;
  verify::report_certificate(r, cert);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("optimality")) << r.to_string();
}

TEST(Optimality, BruteforceCertifiesAndBoundsTinyTraces) {
  Prng prng(0x0b7);
  const MachineModel machine = scalar01();
  for (int trial = 0; trial < 6; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(3, 6));
    const Trace trace = random_ir_trace(prng, params, 2);
    const DepGraph g = verify::graph_from_ir(
        trace, machine, derive_trace_deps(trace, machine));
    const Time opt = optimal_trace_completion(g, machine, 3);
    ASSERT_GE(opt, 0);

    // Exactly optimal -> certified note, never an error.
    const auto certified = verify::certify_trace_completion(g, machine, 3, opt);
    EXPECT_EQ(certified.status,
              verify::OptimalityCertificate::Status::kCertified);

    // One cycle worse -> a provable gap: warning, not an error.
    const auto gap = verify::certify_trace_completion(g, machine, 3, opt + 1);
    EXPECT_NE(gap.status, verify::OptimalityCertificate::Status::kViolated);
    Report r;
    verify::report_certificate(r, gap);
    EXPECT_TRUE(r.ok()) << r.to_string();
    if (gap.status == verify::OptimalityCertificate::Status::kSuboptimal) {
      EXPECT_TRUE(r.has("optimality-gap"));
    }
  }
}

// ---- The fast window check against the enumerating one -------------------

TEST(Legality, MaxInversionSpanMatchesEnumeration) {
  Prng prng(0x11f);
  const MachineModel machine = scalar01();
  for (int trial = 0; trial < 20; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(3, 8));
    params.end_with_branch = false;
    const Trace trace =
        random_ir_trace(prng, params, static_cast<int>(prng.uniform(2, 4)));
    const DepGraph g = build_trace_graph(trace, machine);

    // A random shuffle of all nodes (dependences are irrelevant to the
    // window definition).
    std::vector<NodeId> perm;
    for (NodeId id = 0; id < g.num_nodes(); ++id) perm.push_back(id);
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[prng.index(i)]);
    }

    std::size_t worst = 0;
    for (const auto& [i, j] : inversions(g, perm)) {
      worst = std::max(worst, j - i + 1);
    }
    EXPECT_EQ(max_inversion_span(g, perm).span, worst) << "trial " << trial;
    if (worst > 0) {
      const int w = static_cast<int>(worst);
      EXPECT_TRUE(window_constraint_ok(g, perm, w));
      EXPECT_FALSE(window_constraint_ok(g, perm, w - 1));
    }
  }
}

// ---- Driver-level wiring -------------------------------------------------

TEST(Driver, VerifyScheduleAcceptsTheProductionCompiler) {
  const Trace trace = parse_trace(kTwoBlock);
  for (const auto make : {scalar01, rs6000_like, deep_pipeline, vliw4}) {
    const MachineModel machine = make();
    const ScheduledTrace scheduled = schedule(trace, machine, 0);
    const Report r = verify_schedule(trace, scheduled, machine,
                                     /*check_optimality=*/true);
    EXPECT_TRUE(r.ok()) << machine.name() << "\n" << r.to_string();
  }
}

TEST(Driver, VerifyScheduleRejectsTamperedOutput) {
  const Trace trace = parse_trace(kTwoBlock);
  const MachineModel machine = rs6000_like();
  ScheduledTrace scheduled = schedule(trace, machine, 0);
  // Tamper with the emitted blocks after the fact.
  std::swap(scheduled.blocks[1].insts[0], scheduled.blocks[1].insts[1]);
  const Report r = verify_schedule(trace, scheduled, machine);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace ais
