// Tests for Algorithm Lookahead (Fig. 5) and the legality model
// (Definitions 2.1-2.3).
#include <gtest/gtest.h>

#include "baselines/block_schedulers.hpp"
#include "core/legality.hpp"
#include "core/lookahead.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

std::vector<std::string> names_of(const DepGraph& g,
                                  const std::vector<NodeId>& ids) {
  std::vector<std::string> out;
  for (const NodeId id : ids) out.push_back(g.node(id).name);
  return out;
}

TEST(Legality, SubpermutationsSplitByBlock) {
  const DepGraph g = fig2_trace();
  const std::vector<NodeId> perm = {
      g.find("x"), g.find("e"), g.find("r"), g.find("w"), g.find("b"),
      g.find("z"), g.find("a"), g.find("q"), g.find("p"), g.find("v"),
      g.find("g")};
  const auto subs = subpermutations(g, perm, 2);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(names_of(g, subs[0]),
            (std::vector<std::string>{"x", "e", "r", "w", "b", "a"}));
  EXPECT_EQ(names_of(g, subs[1]),
            (std::vector<std::string>{"z", "q", "p", "v", "g"}));
}

TEST(Legality, InversionsAndWindowConstraint) {
  const DepGraph g = fig2_trace();
  // Permutation ... z a ...: z (block 1) precedes a (block 0) -> inversion.
  const std::vector<NodeId> perm = {
      g.find("x"), g.find("e"), g.find("r"), g.find("w"), g.find("b"),
      g.find("z"), g.find("a"), g.find("q"), g.find("p"), g.find("v"),
      g.find("g")};
  const auto inv = inversions(g, perm);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv[0], (std::pair<std::size_t, std::size_t>{5, 6}));
  EXPECT_TRUE(window_constraint_ok(g, perm, 2));
  EXPECT_FALSE(window_constraint_ok(g, perm, 1));

  // The paper's illegal permutation x e r w b z q a p v g: inversion span
  // (z..a) = 3 > W = 2.
  const std::vector<NodeId> bad = {
      g.find("x"), g.find("e"), g.find("r"), g.find("w"), g.find("b"),
      g.find("z"), g.find("q"), g.find("a"), g.find("p"), g.find("v"),
      g.find("g")};
  std::string why;
  EXPECT_FALSE(window_constraint_ok(g, bad, 2, &why));
  EXPECT_NE(why.find("> W = 2"), std::string::npos);
}

TEST(Legality, Fig2MergedScheduleIsLegalForW2) {
  const DepGraph g = fig2_trace();
  const RankScheduler scheduler(g, scalar01());
  const RankResult r =
      scheduler.run(NodeSet::all(g.num_nodes()), uniform_deadlines(g, 100), {});
  const LegalityReport report = check_legal(scheduler, r.schedule, 2, 2);
  EXPECT_TRUE(report.legal) << report.reason;
}

TEST(Legality, Fig2Latency0VariantViolatesConstraintsForW2) {
  // The paper: with z->q latency 0 the rank-merged schedule may schedule q
  // immediately after z, violating the Window Constraint for W = 2 (and the
  // Ordering Constraint).
  const DepGraph g = fig2_trace_latency0();
  const RankScheduler scheduler(g, scalar01());
  const RankResult r =
      scheduler.run(NodeSet::all(g.num_nodes()), uniform_deadlines(g, 100), {});
  const LegalityReport report = check_legal(scheduler, r.schedule, 2, 2);
  EXPECT_FALSE(report.legal);
}

TEST(Lookahead, Fig2EmitsPaperOrders) {
  const DepGraph g = fig2_trace();
  const RankScheduler scheduler(g, scalar01());
  LookaheadOptions opts;
  opts.window = 2;
  opts.huge = 100;
  const LookaheadResult res = schedule_trace(scheduler, opts);
  ASSERT_EQ(res.per_block.size(), 2u);
  EXPECT_EQ(names_of(g, res.per_block[0]),
            (std::vector<std::string>{"x", "e", "r", "w", "b", "a"}));
  EXPECT_EQ(names_of(g, res.per_block[1]),
            (std::vector<std::string>{"z", "q", "p", "v", "g"}));
  // Executing the emitted code with W = 2 matches the paper's 11 cycles.
  EXPECT_EQ(simulated_completion(g, scalar01(), res.priority_list(), 2), 11);
}

TEST(Lookahead, EmitsEveryInstructionExactlyOnceInItsBlock) {
  Prng prng(0x10ca);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTraceParams params;
    params.num_blocks = static_cast<int>(prng.uniform(1, 5));
    params.block.num_nodes = static_cast<int>(prng.uniform(3, 9));
    params.block.edge_prob = 0.3;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    const RankScheduler scheduler(g, scalar01());
    LookaheadOptions opts;
    opts.window = static_cast<int>(prng.uniform(1, 6));
    const LookaheadResult res = schedule_trace(scheduler, opts);

    EXPECT_EQ(res.order.size(), g.num_nodes());
    std::vector<bool> seen(g.num_nodes(), false);
    for (std::size_t b = 0; b < res.per_block.size(); ++b) {
      for (const NodeId id : res.per_block[b]) {
        EXPECT_EQ(g.node(id).block, static_cast<int>(b));
        EXPECT_FALSE(seen[id]);
        seen[id] = true;
      }
    }
    for (NodeId id = 0; id < g.num_nodes(); ++id) EXPECT_TRUE(seen[id]);
  }
}

TEST(Lookahead, PerBlockOrdersAreTopological) {
  Prng prng(0xabcd);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 3;
    params.block.num_nodes = 8;
    params.block.edge_prob = 0.4;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    const RankScheduler scheduler(g, scalar01());
    LookaheadOptions opts;
    opts.window = 4;
    const LookaheadResult res = schedule_trace(scheduler, opts);
    // Within a block, an instruction never precedes its predecessor.
    std::vector<std::size_t> pos(g.num_nodes(), 0);
    const auto list = res.priority_list();
    for (std::size_t i = 0; i < list.size(); ++i) pos[list[i]] = i;
    for (const DepEdge& e : g.edges()) {
      if (g.node(e.from).block == g.node(e.to).block) {
        EXPECT_LT(pos[e.from], pos[e.to]);
      }
    }
  }
}

TEST(Lookahead, NeverWorseThanPerBlockRankInRestrictedCase) {
  Prng prng(0xbeef);
  int wins_vs_source = 0;
  for (int trial = 0; trial < 20; ++trial) {
    RandomTraceParams params;
    params.num_blocks = static_cast<int>(prng.uniform(2, 6));
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 9));
    params.block.edge_prob = 0.35;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    const MachineModel machine = scalar01();
    const RankScheduler scheduler(g, machine);
    const int window = static_cast<int>(prng.uniform(2, 6));

    LookaheadOptions opts;
    opts.window = window;
    const LookaheadResult res = schedule_trace(scheduler, opts);
    const Time t_anticipatory =
        simulated_completion(g, machine, res.priority_list(), window);

    // Per-block Rank is a strong local baseline (its greedy incidentally
    // fills early idle slots in many random instances); anticipatory must
    // never lose to it.
    const auto rank_baseline =
        schedule_trace_per_block(g, machine, BlockScheduler::kRank);
    EXPECT_LE(t_anticipatory,
              simulated_completion(g, machine, rank_baseline, window))
        << "trial " << trial;

    // And it must strictly beat naive source order somewhere in the sweep.
    const auto source =
        schedule_trace_per_block(g, machine, BlockScheduler::kSourceOrder);
    if (t_anticipatory < simulated_completion(g, machine, source, window)) {
      ++wins_vs_source;
    }
  }
  EXPECT_GT(wins_vs_source, 0);
}

TEST(Lookahead, AblationSwitchesStillProduceCompleteOrders) {
  Prng prng(0xab1a);
  RandomTraceParams params;
  params.num_blocks = 4;
  params.block.num_nodes = 7;
  params.block.edge_prob = 0.3;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  const RankScheduler scheduler(g, scalar01());
  for (const bool delay : {false, true}) {
    for (const bool caps : {false, true}) {
      for (const bool do_chop : {false, true}) {
        LookaheadOptions opts;
        opts.window = 3;
        opts.delay_idle = delay;
        opts.merge_deadline_caps = caps;
        opts.do_chop = do_chop;
        const LookaheadResult res = schedule_trace(scheduler, opts);
        EXPECT_EQ(res.order.size(), g.num_nodes());
      }
    }
  }
}

TEST(Lookahead, SingleBlockTraceEqualsDelayedRankSchedule) {
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  LookaheadOptions opts;
  opts.window = 2;
  opts.huge = 100;
  const LookaheadResult res = schedule_trace(scheduler, opts);
  ASSERT_EQ(res.per_block.size(), 1u);
  // Must be the delayed schedule's order: x e r ... with a last.
  EXPECT_EQ(g.node(res.per_block[0].back()).name, "a");
  EXPECT_EQ(simulated_completion(g, scalar01(), res.priority_list(), 2), 7);
}

}  // namespace
}  // namespace ais
