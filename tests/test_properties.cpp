// Cross-module property sweeps: invariants that must hold for every module
// combination, parameterized over machines, window sizes and seeds.
#include <gtest/gtest.h>

#include "baselines/block_schedulers.hpp"
#include "core/lookahead.hpp"
#include "core/merge.hpp"
#include "core/rank.hpp"
#include "driver/anticipatory.hpp"
#include "graph/critpath.hpp"
#include "graph/topo.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "pipeline/modulo.hpp"
#include "sim/lookahead_sim.hpp"
#include "sim/loop_sim.hpp"
#include "verify/verify.hpp"
#include "workloads/random_graphs.hpp"
#include "workloads/random_ir.hpp"

namespace ais {
namespace {

struct SweepParam {
  const char* name;
  MachineModel (*machine)();
  std::uint64_t seed;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return info.param.name;
}

class MachineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MachineSweep, SimulatedCompletionRespectsLowerBounds) {
  Prng prng(GetParam().seed);
  const MachineModel machine = GetParam().machine();
  for (int trial = 0; trial < 10; ++trial) {
    const DepGraph g = random_machine_trace(prng, machine, 3, 8, 0.3, 2);
    const NodeSet all = NodeSet::all(g.num_nodes());
    for (const int w : {1, 4, 32}) {
      const auto list =
          schedule_trace_per_block(g, machine, BlockScheduler::kSourceOrder);
      const Time t = simulated_completion(g, machine, list, w);
      EXPECT_GE(t, critical_path(g, all));
      EXPECT_GE(t, (g.total_work() + machine.total_units() - 1) /
                       machine.total_units());
    }
  }
}

TEST_P(MachineSweep, StallAccountingOnSingleIssueMachines) {
  const MachineModel machine = GetParam().machine();
  if (machine.issue_width() != 1) GTEST_SKIP();
  Prng prng(GetParam().seed ^ 0x57);
  for (int trial = 0; trial < 8; ++trial) {
    const DepGraph g = random_machine_trace(prng, machine, 2, 8, 0.3, 1);
    const auto list =
        schedule_trace_per_block(g, machine, BlockScheduler::kRank);
    const SimResult r = simulate_list(g, machine, list, 4);
    // Single issue: every cycle either issues or stalls, so completion =
    // (work measured in issue slots) + stalls + trailing latency of the
    // last instruction's execution beyond its issue cycle.
    Time issue_slots = 0;
    for (NodeId id = 0; id < g.num_nodes(); ++id) issue_slots += 1;
    EXPECT_GE(r.completion, issue_slots + r.stall_cycles);
    EXPECT_LE(r.completion,
              issue_slots + r.stall_cycles + g.max_exec_time() - 1);
  }
}

TEST_P(MachineSweep, RankStrictlyDecreasesAlongDependences) {
  Prng prng(GetParam().seed ^ 0x77);
  const MachineModel machine = GetParam().machine();
  for (int trial = 0; trial < 8; ++trial) {
    const DepGraph g = random_machine_block(prng, machine, 16, 0.3);
    const RankScheduler scheduler(g, machine);
    const NodeSet all = NodeSet::all(g.num_nodes());
    bool ok = true;
    const auto rank = scheduler.compute_ranks(
        all, uniform_deadlines(g, huge_deadline(g, all)), {}, &ok);
    EXPECT_TRUE(ok);
    for (const DepEdge& e : g.edges()) {
      if (e.distance != 0) continue;
      EXPECT_LT(rank[e.from], rank[e.to])
          << g.node(e.from).name << " -> " << g.node(e.to).name;
    }
  }
}

TEST_P(MachineSweep, LookaheadOutputIsCompleteAndBlockPreserving) {
  Prng prng(GetParam().seed ^ 0x1a);
  const MachineModel machine = GetParam().machine();
  for (int trial = 0; trial < 6; ++trial) {
    const DepGraph g = random_machine_trace(prng, machine, 4, 6, 0.3, 2);
    const RankScheduler scheduler(g, machine);
    for (const int w : {1, 3, 8}) {
      LookaheadOptions opts;
      opts.window = w;
      const LookaheadResult res = schedule_trace(scheduler, opts);
      ASSERT_EQ(res.order.size(), g.num_nodes());
      for (std::size_t b = 0; b < res.per_block.size(); ++b) {
        for (const NodeId id : res.per_block[b]) {
          EXPECT_EQ(g.node(id).block, static_cast<int>(b));
        }
      }
    }
  }
}

TEST_P(MachineSweep, IndependentVerifierAcceptsEveryCompiledProgram) {
  // The whole pipeline against the independent oracle: 125 random IR
  // programs per machine (500 across the sweep), every one of which must
  // verify clean — blocks preserved, every re-derived dependence ordered,
  // window respected, per-block orders exact subpermutations.
  Prng prng(GetParam().seed ^ 0x5e5);
  const MachineModel machine = GetParam().machine();
  for (int trial = 0; trial < 125; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(3, 12));
    params.mem_frac = 0.4;
    const int blocks = static_cast<int>(prng.uniform(1, 4));
    const Trace trace = random_ir_trace(prng, params, blocks);
    const int window = static_cast<int>(prng.uniform(1, 9));
    const ScheduledTrace scheduled = schedule(trace, machine, window);
    const verify::Report report = verify_schedule(trace, scheduled, machine);
    ASSERT_TRUE(report.ok()) << machine.name() << " trial " << trial
                             << " W=" << window << "\n"
                             << report.to_string();
  }
}

TEST_P(MachineSweep, VerifierRejectsTamperedCompilations) {
  // The flip side: corrupt each compilation in a random way and demand a
  // rejection — 5 tamperings per machine, 20 across the sweep, on top of
  // the targeted mutation catalogue in test_verify.cpp.
  Prng prng(GetParam().seed ^ 0x7e7);
  const MachineModel machine = GetParam().machine();
  for (int trial = 0; trial < 5; ++trial) {
    RandomIrParams params;
    params.num_insts = 8;
    const Trace trace = random_ir_trace(prng, params, 2);
    ScheduledTrace scheduled = schedule(trace, machine, 2);
    // Move the first instruction of block 1 into block 0 (ahead of the
    // branch): always illegal cross-block motion.
    auto& b0 = scheduled.blocks[0].insts;
    auto& b1 = scheduled.blocks[1].insts;
    ASSERT_FALSE(b1.empty());
    b0.insert(b0.begin(), b1.front());
    b1.erase(b1.begin());
    const verify::Report report = verify_schedule(trace, scheduled, machine);
    EXPECT_FALSE(report.ok()) << machine.name() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, MachineSweep,
    ::testing::Values(SweepParam{"scalar01", scalar01, 0xa1},
                      SweepParam{"rs6000", rs6000_like, 0xa2},
                      SweepParam{"deep", deep_pipeline, 0xa3},
                      SweepParam{"vliw4", vliw4, 0xa4}),
    sweep_name);

// ---- Loop-wide invariants ------------------------------------------------

TEST(LoopProperties, SteadyStateNeverBeatsTheMiiBounds) {
  // Any per-iteration order, any window: the steady-state period is bounded
  // below by both the recurrence MII and the resource MII — a three-module
  // agreement check (simulator vs pipeline-bounds vs generators).
  Prng prng(0x5bb);
  for (const auto make : {scalar01, deep_pipeline, vliw4}) {
    const MachineModel machine = make();
    for (int trial = 0; trial < 6; ++trial) {
      const DepGraph g = random_machine_block(prng, machine, 7, 0.3);
      DepGraph loop = g;  // add carried edges onto a copy
      for (int k = 0; k < 2; ++k) {
        loop.add_edge(static_cast<NodeId>(prng.index(loop.num_nodes())),
                      static_cast<NodeId>(prng.index(loop.num_nodes())),
                      static_cast<int>(prng.uniform(0, 3)), 1);
      }
      // Dynamic execution may interleave iterations unevenly, so the binding
      // bounds are the *fractional* ones: ceil()-free resource occupancy,
      // and (recurrence_mii - 1) since ceil(true cycle ratio) = rec implies
      // the ratio exceeds rec - 1.  (The integral MIIs bound only repeating
      // modulo schedules — see bench_swp_postpass.)
      const double rec_floor = recurrence_mii(loop) - 1.0;
      std::vector<double> class_work(
          static_cast<std::size_t>(machine.num_fu_classes()), 0);
      for (NodeId id = 0; id < loop.num_nodes(); ++id) {
        class_work[static_cast<std::size_t>(loop.node(id).fu_class)] +=
            loop.node(id).exec_time;
      }
      double res_frac = static_cast<double>(loop.num_nodes()) /
                        machine.issue_width();
      for (int c = 0; c < machine.num_fu_classes(); ++c) {
        res_frac = std::max(res_frac, class_work[static_cast<std::size_t>(c)] /
                                          machine.fu_count(c));
      }
      const auto order_opt = topo_order(loop, NodeSet::all(loop.num_nodes()));
      ASSERT_TRUE(order_opt.has_value());
      for (const int w : {1, 4, 16}) {
        const double period =
            steady_state_period(loop, machine, *order_opt, w);
        EXPECT_GT(period + 1e-9, rec_floor) << machine.name() << " W=" << w;
        EXPECT_GE(period + 1e-9, res_frac) << machine.name() << " W=" << w;
      }
    }
  }
}

TEST(LoopProperties, ModuloScheduleIiUpperBoundsSimulatedKernel) {
  Prng prng(0x5bc);
  const MachineModel machine = deep_pipeline();
  for (int trial = 0; trial < 8; ++trial) {
    RandomLoopParams params;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 9));
    params.block.edge_prob = 0.35;
    params.block.max_latency = 3;
    params.carried_edges = 2;
    const DepGraph g = random_loop(prng, params);
    const ModuloSchedule s = modulo_schedule(g, machine);
    ASSERT_TRUE(s.found);
    const DepGraph k = kernel_graph(g, s);
    std::vector<NodeId> order;
    for (NodeId id = 0; id < k.num_nodes(); ++id) order.push_back(id);
    // A wide window realizes the modulo schedule's II (or better).
    EXPECT_LE(steady_state_period(k, machine, order, 32),
              static_cast<double>(s.ii) + 1e-9);
  }
}

// ---- Merge / schedule invariants ----------------------------------------

TEST(MergeProperties, MakespanAtLeastUnconstrainedBound) {
  Prng prng(0x3e3);
  const MachineModel machine = scalar01();
  for (int trial = 0; trial < 10; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 2;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 9));
    params.block.edge_prob = 0.35;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    const RankScheduler scheduler(g, machine);
    const auto blocks = blocks_of(g);
    const Time huge = huge_deadline(g, NodeSet::all(g.num_nodes()));

    DeadlineMap d = uniform_deadlines(g, huge);
    const RankResult alone = scheduler.run(blocks[0], d, {});
    for (const NodeId id : blocks[0].ids()) d[id] = alone.makespan;
    const MergeResult m = merge_blocks(scheduler, blocks[0], blocks[1], d,
                                       alone.makespan, huge, {});

    DeadlineMap flat = uniform_deadlines(g, huge);
    const RankResult unconstrained =
        scheduler.run(set_union(blocks[0], blocks[1]), flat, {});
    EXPECT_GE(m.makespan, unconstrained.makespan);
    EXPECT_GE(m.makespan, alone.makespan);
  }
}

TEST(ScheduleProperties, PermutationAndUSetsConsistent) {
  Prng prng(0x5ce);
  const MachineModel machine = scalar01();
  for (int trial = 0; trial < 10; ++trial) {
    RandomBlockParams params;
    params.num_nodes = static_cast<int>(prng.uniform(4, 12));
    params.edge_prob = 0.4;
    const DepGraph g = random_block(prng, params);
    const RankScheduler scheduler(g, machine);
    const NodeSet all = NodeSet::all(g.num_nodes());
    const RankResult r =
        scheduler.run(all, uniform_deadlines(g, huge_deadline(g, all)), {});

    const auto perm = r.schedule.permutation();
    ASSERT_EQ(perm.size(), g.num_nodes());
    for (std::size_t i = 1; i < perm.size(); ++i) {
      EXPECT_LT(r.schedule.start(perm[i - 1]), r.schedule.start(perm[i]));
    }
    // u sets partition the permutation, in order, and their count is one
    // more than the number of interior idle gaps.
    const auto sets = r.schedule.u_sets();
    std::vector<NodeId> flattened;
    for (const auto& u : sets) {
      EXPECT_FALSE(u.empty());
      flattened.insert(flattened.end(), u.begin(), u.end());
    }
    EXPECT_EQ(flattened, perm);
  }
}

// ---- Dependence-builder invariants ---------------------------------------

TEST(DepBuildProperties, TraceGraphsAreForwardAndLoopGraphsCarry) {
  Prng prng(0xdeb);
  for (int trial = 0; trial < 10; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 12));
    const Trace trace = random_ir_trace(prng, params, 3);
    const DepGraph g = build_trace_graph(trace, rs6000_like());
    EXPECT_EQ(g.num_nodes(), trace.num_insts());
    for (const DepEdge& e : g.edges()) {
      EXPECT_EQ(e.distance, 0);
      EXPECT_LE(g.node(e.from).block, g.node(e.to).block);
      if (g.node(e.from).block == g.node(e.to).block) {
        EXPECT_LT(e.from, e.to);  // program order within a block
      }
    }

    Loop loop;
    loop.body.blocks.push_back(trace.blocks[0]);
    const DepGraph lg = build_loop_graph(loop, rs6000_like());
    EXPECT_EQ(lg.num_nodes(), trace.blocks[0].insts.size());
    for (const DepEdge& e : lg.edges()) {
      EXPECT_LE(e.distance, 1);
      if (e.distance == 0) {
        EXPECT_LT(e.from, e.to);
      }
    }
  }
}

TEST(DepBuildProperties, LoopIndependentEdgesAgreeWithTraceAnalysis) {
  // The distance-0 edges of a loop graph must be exactly the edges of the
  // same block analyzed as straight-line code.
  Prng prng(0xdec);
  for (int trial = 0; trial < 8; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 10));
    const BasicBlock bb = random_ir_block(prng, params);
    const DepGraph straight = build_block_graph(bb, rs6000_like());
    Loop loop;
    loop.body.blocks.push_back(bb);
    const DepGraph looped = build_loop_graph(loop, rs6000_like());

    std::set<std::tuple<NodeId, NodeId, int>> straight_edges;
    for (const DepEdge& e : straight.edges()) {
      straight_edges.insert({e.from, e.to, e.latency});
    }
    std::set<std::tuple<NodeId, NodeId, int>> loop_li_edges;
    for (const DepEdge& e : looped.edges()) {
      if (e.distance == 0) loop_li_edges.insert({e.from, e.to, e.latency});
    }
    EXPECT_EQ(straight_edges, loop_li_edges);
  }
}

}  // namespace
}  // namespace ais
