// Unit tests for the support substrate: PRNG, bitset, strings, tables, CLI,
// thread pool, arena.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "support/arena.hpp"
#include "support/bitset.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/prng.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace ais {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DiffersAcrossSeeds) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Prng, UniformStaysInRange) {
  Prng prng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = prng.uniform(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(Prng, UniformCoversRange) {
  Prng prng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(prng.uniform(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prng, Uniform01InHalfOpenInterval) {
  Prng prng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = prng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, ChanceExtremes) {
  Prng prng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(prng.chance(0.0));
    EXPECT_TRUE(prng.chance(1.0));
  }
}

TEST(Prng, ShufflePreservesElements) {
  Prng prng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  prng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Prng, SplitProducesIndependentStream) {
  Prng a(5);
  Prng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(Bitset, SetTestReset) {
  DynamicBitset bits(130);
  EXPECT_TRUE(bits.none());
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, UnionAndIntersection) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  a.set(3);
  a.set(65);
  b.set(65);
  b.set(4);
  EXPECT_TRUE(a.intersects(b));
  a |= b;
  EXPECT_EQ(a.count(), 3u);
  DynamicBitset c(70);
  c.set(4);
  a &= c;
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(4));
}

TEST(Bitset, ForEachVisitsAscending) {
  DynamicBitset bits(200);
  bits.set(5);
  bits.set(100);
  bits.set(199);
  EXPECT_EQ(bits.to_indices(), (std::vector<std::size_t>{5, 100, 199}));
}

TEST(Str, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(Str, SplitWsDropsEmpty) {
  EXPECT_EQ(split_ws("  a \t b  "), (std::vector<std::string>{"a", "b"}));
}

TEST(Str, JoinAndTrim) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(trim("  x \n"), "x");
  EXPECT_TRUE(starts_with("block foo", "block "));
  EXPECT_FALSE(starts_with("b", "block"));
}

TEST(Str, FmtDouble) { EXPECT_EQ(fmt_double(1.005, 1), "1.0"); }

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Cli, ParsesFormsAndDefaults) {
  const char* argv[] = {"prog", "--n", "12", "--p=0.5", "--flag"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), 12);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.5);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get_string("s", "dft"), "dft");
  EXPECT_TRUE(args.has("p"));
  EXPECT_FALSE(args.has("q"));
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 1; i <= 100; ++i) {
      pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(sum.load(), 5050);
    // The pool is reusable after wait_idle.
    pool.submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
  }  // destructor drains the queue
  EXPECT_EQ(sum.load(), 5051);
}

TEST(ThreadPool, ClampJobs) {
  EXPECT_GE(clamp_jobs(0), 1);
  EXPECT_GE(clamp_jobs(-3), 1);
  EXPECT_EQ(clamp_jobs(1), 1);
  EXPECT_EQ(clamp_jobs(7), 7);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 4}) {
    constexpr std::size_t kN = 257;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    parallel_for(jobs, kN, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelFor, ZeroAndOneElementDegenerate) {
  int calls = 0;
  parallel_for(8, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(8, 1, [&calls](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, TasksOverlapInTime) {
  // Two tasks that each wait for the other to start can only finish if the
  // pool genuinely runs them concurrently (a serial loop would deadlock the
  // first task; the generous timeout turns that into a visible failure).
  std::atomic<int> started{0};
  std::atomic<bool> both_seen{false};
  parallel_for(2, 2, [&](std::size_t) {
    started.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (started.load() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    if (started.load() == 2) both_seen.store(true);
  });
  EXPECT_TRUE(both_seen.load());
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  auto* a = static_cast<std::uint8_t*>(arena.allocate(3, 1));
  auto* b = static_cast<std::uint64_t*>(arena.allocate(8, 8));
  auto* c = static_cast<std::uint8_t*>(arena.allocate(5, 1));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  // Writing through each pointer must not disturb the others.
  std::memset(a, 0xaa, 3);
  *b = 0x0123456789abcdefULL;
  std::memset(c, 0xcc, 5);
  EXPECT_EQ(a[0], 0xaa);
  EXPECT_EQ(*b, 0x0123456789abcdefULL);
  EXPECT_EQ(c[4], 0xcc);
  EXPECT_GE(arena.bytes_allocated(), 16u);
}

TEST(Arena, ZeroByteRequestYieldsValidPointer) {
  Arena arena;
  EXPECT_NE(arena.allocate(0, 1), nullptr);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(64);
  auto* big = arena.alloc_array<std::uint8_t>(1000);
  std::memset(big, 0x5a, 1000);
  EXPECT_EQ(big[999], 0x5a);
  EXPECT_GE(arena.bytes_reserved(), 1000u);
  // The small-chunk bump path still works after an oversized detour.
  auto* small = arena.alloc_array<std::uint32_t>(4);
  small[3] = 7;
  EXPECT_EQ(small[3], 7u);
}

TEST(Arena, ResetRewindsWithoutReleasing) {
  Arena arena(128);
  for (int i = 0; i < 50; ++i) arena.allocate(64, 8);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // Re-allocating up to the previous peak must not grow the backing memory.
  for (int i = 0; i < 50; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, ArenaVectorGrowsAndMoves) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[999], 999);
  ArenaVector<int> w{ArenaAllocator<int>(arena)};
  w = std::move(v);
  EXPECT_EQ(w.size(), 1000u);
  EXPECT_EQ(w[500], 500);
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/ais_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"x,y", "plain"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",plain");
}

}  // namespace
}  // namespace ais
