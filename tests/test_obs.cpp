// Tests for the telemetry subsystem (src/obs): runtime gating, counter
// monotonicity and thread safety, span aggregation and trace-event nesting,
// Chrome-trace JSON well-formedness, ScheduleStats deltas, and the
// simulator's stall attribution invariants.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "graph/depgraph.hpp"
#include "machine/machine_model.hpp"
#include "obs/obs.hpp"
#include "obs/stats.hpp"
#include "sim/lookahead_sim.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

/// Resets telemetry to a known state for one test: registry cleared, both
/// gates as requested.
void fresh(bool enabled, bool trace = false) {
  obs::set_trace_enabled(false);
  obs::set_enabled(false);
  obs::reset();
  if (enabled) obs::set_enabled(true);
  if (trace) obs::set_trace_enabled(true);
}

// --- a minimal JSON grammar checker -------------------------------------
//
// Enough of RFC 8259 to certify that write_chrome_trace emits a single
// well-formed value (the CI check runs the real `json` module on the same
// output; this keeps the guarantee inside ctest).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- gating -------------------------------------------------------------

TEST(Obs, HooksMatchTheConfiguredBuildOption) {
  // AIS_TEST_EXPECT_HOOKS mirrors the CMake AIS_OBS option (see
  // tests/CMakeLists.txt): the option must reach every translation unit.
  EXPECT_EQ(obs::kHooksCompiledIn, AIS_TEST_EXPECT_HOOKS != 0);
}

TEST(Obs, DisabledRuntimeRecordsNothing) {
  fresh(/*enabled=*/false);
  obs::count("never", 7);
  { AIS_OBS_SPAN("ghost"); }
  AIS_OBS_COUNT_DYN(std::string("dyn.") + "ghost", 1);
  EXPECT_EQ(obs::counter_value("never"), 0u);
  EXPECT_TRUE(obs::counters_snapshot().empty());
  EXPECT_TRUE(obs::phase_totals().empty());
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST(Obs, TraceImpliesEnabledAndDisableClearsBoth) {
  fresh(/*enabled=*/false);
  obs::set_trace_enabled(true);
  EXPECT_TRUE(obs::enabled());
  EXPECT_TRUE(obs::trace_enabled());
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  EXPECT_FALSE(obs::trace_enabled());
}

TEST(Obs, InitFromEnvHonoursAisTrace) {
  fresh(/*enabled=*/false);
  ::setenv("AIS_TRACE", "1", 1);
  obs::init_from_env();
  EXPECT_TRUE(obs::enabled());
  EXPECT_FALSE(obs::trace_enabled());

  fresh(/*enabled=*/false);
  ::setenv("AIS_TRACE", "trace", 1);
  obs::init_from_env();
  EXPECT_TRUE(obs::trace_enabled());

  fresh(/*enabled=*/false);
  ::setenv("AIS_TRACE", "0", 1);
  obs::init_from_env();
  EXPECT_FALSE(obs::enabled());
  ::unsetenv("AIS_TRACE");
}

// --- counters -----------------------------------------------------------

TEST(Obs, CountersAreMonotoneAndRegisterOnFirstTouch) {
  fresh(/*enabled=*/true);
  obs::count("a.zero", 0);  // registers without changing the value
  EXPECT_EQ(obs::counter_value("a.zero"), 0u);
  obs::count("a.bumped");
  obs::count("a.bumped", 4);
  EXPECT_EQ(obs::counter_value("a.bumped"), 5u);
  EXPECT_EQ(obs::counter_value("a.untouched"), 0u);

  const auto snap = obs::counters_snapshot();
  ASSERT_EQ(snap.size(), 2u);  // untouched names do not appear
  EXPECT_EQ(snap[0].first, "a.bumped");
  EXPECT_EQ(snap[1].first, "a.zero");
}

TEST(Obs, CountersSumAcrossThreads) {
  fresh(/*enabled=*/true);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([] {
      for (int i = 0; i < kIncrements; ++i) obs::count("mt.hits");
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(obs::counter_value("mt.hits"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Obs, ResetClearsCountersPhasesAndEvents) {
  fresh(/*enabled=*/true, /*trace=*/true);
  obs::count("gone", 3);
  { obs::Span span("gone_phase"); }
  obs::reset();
  EXPECT_TRUE(obs::counters_snapshot().empty());
  EXPECT_TRUE(obs::phase_totals().empty());
  EXPECT_TRUE(obs::trace_events().empty());
}

// --- spans and trace events ---------------------------------------------

// Span/trace tests drive obs::Span directly: the class (unlike the hook
// macros) is part of the library API and works in AIS_OBS=OFF builds too.
TEST(Obs, SpansAggregateIntoPhaseTotals) {
  fresh(/*enabled=*/true);
  { obs::Span span("phase_a"); }
  { obs::Span span("phase_a"); }
  { obs::Span span("phase_b"); }
  const auto totals = obs::phase_totals();
  ASSERT_EQ(totals.size(), 2u);
  std::uint64_t calls_a = 0;
  for (const obs::PhaseTotal& p : totals) {
    EXPECT_GE(p.total_ms, 0.0);
    if (p.name == "phase_a") calls_a = p.calls;
  }
  EXPECT_EQ(calls_a, 2u);
}

TEST(Obs, TraceEventsNestWithinTheirParent) {
  fresh(/*enabled=*/true, /*trace=*/true);
  {
    obs::Span outer_span("outer");
    {
      obs::Span inner_span("inner");
    }
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: the inner span closes first.
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.tid, outer.tid);
  // The child interval is contained in the parent interval.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST(Obs, SpansOnDistinctThreadsGetDistinctTids) {
  fresh(/*enabled=*/true, /*trace=*/true);
  { obs::Span span("main_thread"); }
  std::thread([] { obs::Span span("worker_thread"); }).join();
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Obs, SpansRecordNoEventsWithoutTraceMode) {
  fresh(/*enabled=*/true, /*trace=*/false);
  { obs::Span span("counted_not_traced"); }
  EXPECT_EQ(obs::phase_totals().size(), 1u);
  EXPECT_TRUE(obs::trace_events().empty());
}

// --- Chrome trace output ------------------------------------------------

TEST(Obs, ChromeTraceIsWellFormedJson) {
  fresh(/*enabled=*/true, /*trace=*/true);
  {
    obs::Span compile_span("compile");
    obs::Span quoted_span("rank \"quoted\"\n");  // exercises escaping
    obs::count("rank.runs", 2);
  }
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counters
}

TEST(Obs, ChromeTraceWithNoEventsIsStillValid) {
  fresh(/*enabled=*/true, /*trace=*/true);
  std::ostringstream os;
  obs::write_chrome_trace(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

// --- ScheduleStats ------------------------------------------------------

TEST(Obs, ScheduleStatsDeltaIsolatesOneInterval) {
  fresh(/*enabled=*/true);
  obs::count(obs::ctr::kRankRuns, 2);
  const obs::ScheduleStats before = obs::ScheduleStats::capture();
  obs::count(obs::ctr::kRankRuns, 3);
  obs::count(obs::ctr::kMergeRelaxRounds, 7);
  const obs::ScheduleStats d = obs::ScheduleStats::capture().delta(before);
  EXPECT_EQ(d.rank_runs, 3u);
  EXPECT_EQ(d.merge_relax_rounds, 7u);
  EXPECT_EQ(d.chop_points, 0u);
}

TEST(Obs, RegisterBuiltinCountersMakesProfileComplete) {
  fresh(/*enabled=*/true);
  obs::register_builtin_counters();
  const auto snap = obs::counters_snapshot();
  EXPECT_GE(snap.size(), 8u);  // the acceptance bar for `aisc --profile`
  EXPECT_EQ(obs::counter_value(obs::ctr::kChopPoints), 0u);
  const std::string report = obs::profile_report();
  EXPECT_NE(report.find(obs::ctr::kRankRuns), std::string::npos);
  EXPECT_NE(report.find(obs::ctr::kSimStallWindow), std::string::npos);
}

// --- simulator stall attribution ----------------------------------------

/// Chain head -> tail with a long latency, plus one independent node listed
/// after the tail: with W too small to see past the tail, the independent
/// node is ready with a free unit while the machine stalls.
DepGraph chain_plus_independent() {
  DepGraph g;
  const NodeId head = g.add_node("head", 1, 0, 0);
  const NodeId tail = g.add_node("tail", 1, 0, 0);
  g.add_node("indep", 1, 0, 0);
  g.add_edge(head, tail, /*latency=*/3);
  return g;
}

TEST(ObsSim, WindowStallWhenReadyWorkIsBeyondReach) {
  const DepGraph g = chain_plus_independent();
  const std::vector<NodeId> list = {0, 1, 2};
  const SimResult r = simulate_list(g, scalar01(), list, /*window=*/1);
  EXPECT_GT(r.window_stall_cycles, 0);
  EXPECT_EQ(r.latency_stall_cycles + r.window_stall_cycles, r.stall_cycles);
}

TEST(ObsSim, FullWindowAttributesEverythingToLatency) {
  const DepGraph g = chain_plus_independent();
  const std::vector<NodeId> list = {0, 1, 2};
  const SimResult r = simulate_list(g, scalar01(), list, /*window=*/3);
  // Everything is visible, so no stall can be the window's fault.
  EXPECT_EQ(r.window_stall_cycles, 0);
  EXPECT_EQ(r.latency_stall_cycles, r.stall_cycles);
}

TEST(ObsSim, OccupancyHistogramSumsToSimulatedCycles) {
  const DepGraph g = chain_plus_independent();
  const std::vector<NodeId> list = {0, 1, 2};
  const SimResult r = simulate_list(g, scalar01(), list, /*window=*/2);
  ASSERT_EQ(r.window_occupancy.size(), 3u);  // occupancy 0, 1, 2
  Time last_issue = 0;
  for (const NodeId id : list) {
    last_issue = std::max(last_issue, r.issue_time[id]);
  }
  const Time simulated = std::accumulate(r.window_occupancy.begin(),
                                         r.window_occupancy.end(), Time{0});
  EXPECT_EQ(simulated, last_issue + 1);
}

TEST(ObsSim, AttributionInvariantHoldsOnRandomTraces) {
  Prng prng(0x0b5);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 2;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 10));
    params.block.edge_prob = 0.35;
    params.block.max_latency = 3;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    std::vector<NodeId> list(static_cast<std::size_t>(g.num_nodes()));
    std::iota(list.begin(), list.end(), NodeId{0});
    for (const int window : {1, 2, 4}) {
      const SimResult r = simulate_list(g, rs6000_like(), list, window);
      EXPECT_EQ(r.latency_stall_cycles + r.window_stall_cycles,
                r.stall_cycles);
      const Time cycles = std::accumulate(
          r.window_occupancy.begin(), r.window_occupancy.end(), Time{0});
      EXPECT_GE(cycles, r.completion - g.max_exec_time());
    }
  }
}

TEST(ObsSim, SimCountersAccumulateStallAttribution) {
  if (!obs::kHooksCompiledIn) {
    GTEST_SKIP() << "simulator instrumentation compiled out (AIS_OBS=OFF)";
  }
  fresh(/*enabled=*/true);
  const DepGraph g = chain_plus_independent();
  const std::vector<NodeId> list = {0, 1, 2};
  const SimResult r = simulate_list(g, scalar01(), list, /*window=*/1);
  EXPECT_EQ(obs::counter_value(obs::ctr::kSimRuns), 1u);
  EXPECT_EQ(obs::counter_value(obs::ctr::kSimStallWindow),
            static_cast<std::uint64_t>(r.window_stall_cycles));
  EXPECT_EQ(obs::counter_value(obs::ctr::kSimStallLatency),
            static_cast<std::uint64_t>(r.latency_stall_cycles));
  fresh(/*enabled=*/false);  // leave the process-global gate off for peers
}

}  // namespace
}  // namespace ais
