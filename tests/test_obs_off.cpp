// Compiled with AIS_OBS_ENABLED=0 (see tests/CMakeLists.txt): proves the
// telemetry hook macros vanish at compile time — even with the runtime gate
// forced on, a TU built without hooks records nothing.  This is the
// zero-overhead-when-disabled contract of docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace ais {
namespace {

TEST(ObsOff, HooksAreCompiledOutOfThisTranslationUnit) {
  EXPECT_FALSE(obs::kHooksCompiledIn);
}

TEST(ObsOff, MacrosAreNoOpsEvenWhenRuntimeEnabled) {
  obs::reset();
  obs::set_trace_enabled(true);  // force both runtime gates on

  AIS_OBS_COUNT("off.count", 42);
  AIS_OBS_COUNT_DYN(std::string("off.") + "dyn", 1);
  AIS_OBS_VALUE("off.value", 7);
  {
    AIS_OBS_SPAN("off.span");
    AIS_OBS_SPAN_DETAIL("off.detail_span");
    AIS_OBS_TIMER("off.timer_us");
  }

  // The library (compiled with hooks) sees nothing from this TU.
  EXPECT_EQ(obs::counter_value("off.count"), 0u);
  EXPECT_EQ(obs::counter_value("off.dyn"), 0u);
  EXPECT_TRUE(obs::phase_totals().empty());
  EXPECT_TRUE(obs::trace_events().empty());
  for (const obs::MetricSeries& s : obs::MetricRegistry::global().snapshot()) {
    EXPECT_TRUE(s.name.rfind("off.", 0) != 0) << s.name;
  }

  // Direct API calls still work — only the macros are compiled out.
  obs::count("off.direct", 3);
  EXPECT_EQ(obs::counter_value("off.direct"), 3u);

  obs::set_enabled(false);
  obs::reset();
}

TEST(ObsOff, MacrosExpandToExpressionsSafeInSingleStatementContexts) {
  // `if (...) AIS_OBS_COUNT(...); else ...` must stay legal when the macros
  // are stubbed out.
  obs::set_enabled(false);
  if (obs::kHooksCompiledIn)
    AIS_OBS_COUNT("off.branch");
  else
    AIS_OBS_SPAN("off.branch_span");
  if (obs::kHooksCompiledIn)
    AIS_OBS_VALUE("off.branch_value", 1);
  else
    AIS_OBS_TIMER("off.branch_timer");
  SUCCEED();
}

}  // namespace
}  // namespace ais
