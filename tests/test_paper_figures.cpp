// Consolidated golden tests: every number the paper prints, end to end.
//
// Fig. 1: ranks 95/95/98/98/100/100, makespan 7, idle slot delayed 2 -> 5.
// Fig. 2: merged ranks 90..100, the priority list, the makespan-11 legal
//         schedule, and the latency-0 illegality counterexample at W = 2.
// Fig. 3: schedule 1 = 5 cycles/block & 7 steady-state; schedule 2 = 6 & 6;
//         §5.2.3 selects schedule 2 via the MULTIPLY pivot.
// Fig. 8: 5n-1 vs 4n; the single-source surrogate is symmetric in nodes
//         1 and 2 while the sink-form (duality) candidate finds 2-1-3.
#include <gtest/gtest.h>

#include "core/legality.hpp"
#include "core/lookahead.hpp"
#include "core/loop_single.hpp"
#include "core/move_idle.hpp"
#include "core/rank.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "sim/loop_sim.hpp"
#include "verify/schedule_check.hpp"
#include "workloads/paper_graphs.hpp"

namespace ais {
namespace {

std::vector<std::string> names_of(const DepGraph& g,
                                  const std::vector<NodeId>& ids) {
  std::vector<std::string> out;
  for (const NodeId id : ids) out.push_back(g.node(id).name);
  return out;
}

TEST(PaperFigure1, EndToEnd) {
  const DepGraph g = fig1_bb1();
  const MachineModel machine = scalar01();
  const RankScheduler scheduler(g, machine);
  const NodeSet all = NodeSet::all(g.num_nodes());

  // Paper's tie order lists e before x.
  RankOptions opts;
  opts.tie_break.assign(g.num_nodes(), 0);
  opts.tie_break[g.find("e")] = -1;

  DeadlineMap d = uniform_deadlines(g, 100);
  RankResult r = scheduler.run(all, d, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.makespan, 7);
  EXPECT_EQ(r.rank[g.find("x")], 95);
  EXPECT_EQ(r.rank[g.find("a")], 100);
  ASSERT_EQ(r.schedule.idle_slots().size(), 1u);
  EXPECT_EQ(r.schedule.idle_slots()[0].time, 2);

  for (const NodeId id : all.ids()) d[id] = r.makespan;
  const Schedule delayed =
      delay_idle_slots(scheduler, std::move(r.schedule), d, opts);
  EXPECT_EQ(delayed.makespan(), 7);
  ASSERT_EQ(delayed.idle_slots().size(), 1u);
  EXPECT_EQ(delayed.idle_slots()[0].time, 5);

  // The independent verifier accepts the delayed schedule and certifies
  // the makespan against the brute-force block oracle.
  EXPECT_TRUE(verify::check_schedule(delayed, machine).ok());
  const verify::OptimalityCertificate cert =
      verify::certify_block_makespan(g, all, delayed.makespan());
  EXPECT_EQ(cert.status, verify::OptimalityCertificate::Status::kCertified);
}

TEST(PaperFigure2, EndToEnd) {
  const DepGraph g = fig2_trace();
  const MachineModel machine = scalar01();
  const RankScheduler scheduler(g, machine);

  // Whole-trace merged schedule under D = 100.
  const RankResult merged =
      scheduler.run(NodeSet::all(g.num_nodes()), uniform_deadlines(g, 100), {});
  EXPECT_EQ(merged.makespan, 11);
  EXPECT_TRUE(check_legal(scheduler, merged.schedule, 2, 2).legal);

  // Algorithm Lookahead emits the per-block orders whose hardware execution
  // at W = 2 completes in 11 cycles; z overtakes a inside the window.
  LookaheadOptions opts;
  opts.window = 2;
  opts.huge = 100;
  const LookaheadResult res = schedule_trace(scheduler, opts);
  const SimResult sim = simulate_list(g, machine, res.priority_list(), 2);
  EXPECT_EQ(sim.completion, 11);
  EXPECT_LT(sim.issue_time[g.find("z")], sim.issue_time[g.find("a")]);

  // The emitted priority list respects every dependence and the merged
  // schedule passes the independent machine-level re-check.
  EXPECT_TRUE(verify::check_order(g, res.priority_list()).ok());
  EXPECT_TRUE(verify::check_schedule(merged.schedule, machine).ok());

  // The latency-0 variant's naive merged schedule is illegal for W = 2.
  const DepGraph bad = fig2_trace_latency0();
  const RankScheduler bad_scheduler(bad, machine);
  const RankResult bad_merged = bad_scheduler.run(
      NodeSet::all(bad.num_nodes()), uniform_deadlines(bad, 100), {});
  EXPECT_FALSE(check_legal(bad_scheduler, bad_merged.schedule, 2, 2).legal);
}

TEST(PaperFigure3, EndToEnd) {
  const DepGraph g = fig3_loop();
  const MachineModel machine = scalar01();
  const std::vector<NodeId> sched1 = {g.find("L4"), g.find("ST"), g.find("C4"),
                                      g.find("M"), g.find("BT")};
  const std::vector<NodeId> sched2 = {g.find("L4"), g.find("ST"), g.find("M"),
                                      g.find("C4"), g.find("BT")};
  EXPECT_EQ(simulate_loop(g, machine, sched1, 1, 1).completion, 5);
  EXPECT_EQ(simulate_loop(g, machine, sched2, 1, 1).completion, 6);
  EXPECT_DOUBLE_EQ(steady_state_period(g, machine, sched1, 1), 7.0);
  EXPECT_DOUBLE_EQ(steady_state_period(g, machine, sched2, 1), 6.0);

  LoopSingleOptions opts;
  opts.prune = LoopSingleOptions::Prune::kNever;
  const LoopCandidate best = schedule_single_block_loop(
      g, machine,
      [&](const std::vector<NodeId>& order) {
        return steady_state_period(g, machine, order, 1);
      },
      opts);
  EXPECT_EQ(names_of(g, best.order),
            (std::vector<std::string>{"L4", "ST", "M", "C4", "BT"}));
  // Both paper schedules and the search winner are dependence-legal orders.
  EXPECT_TRUE(verify::check_order(g, sched1).ok());
  EXPECT_TRUE(verify::check_order(g, sched2).ok());
  EXPECT_TRUE(verify::check_order(g, best.order).ok());
}

TEST(PaperFigure8, EndToEnd) {
  const DepGraph g = fig8_loop();
  const MachineModel machine = scalar01();
  const std::vector<NodeId> s1 = {g.find("1"), g.find("2"), g.find("3")};
  const std::vector<NodeId> s2 = {g.find("2"), g.find("1"), g.find("3")};
  for (const int n : {4, 9, 16}) {
    EXPECT_EQ(simulate_loop(g, machine, s1, 1, n).completion, 5 * n - 1);
    EXPECT_EQ(simulate_loop(g, machine, s2, 1, n).completion, 4 * n);
  }

  // Each source-form surrogate is symmetric in nodes 1 and 2 (the carried
  // latencies collapse onto the dummy sink), so neither discovers the
  // asymmetric optimum — both emit the tie-broken order 1 2 3.
  const LoopCandidate src1 =
      build_loop_candidate(g, machine, g.find("1"), /*source_form=*/true, {});
  const LoopCandidate src2 =
      build_loop_candidate(g, machine, g.find("2"), /*source_form=*/true, {});
  EXPECT_EQ(names_of(g, src1.order), (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(names_of(g, src2.order), (std::vector<std::string>{"1", "2", "3"}));

  const LoopCandidate sink =
      build_loop_candidate(g, machine, g.find("3"), /*source_form=*/false, {});
  EXPECT_EQ(names_of(g, sink.order), (std::vector<std::string>{"2", "1", "3"}));

  const LoopCandidate best = schedule_single_block_loop(
      g, machine,
      [&](const std::vector<NodeId>& order) {
        return steady_state_period(g, machine, order, 1);
      },
      {});
  EXPECT_DOUBLE_EQ(steady_state_period(g, machine, best.order, 1), 4.0);
  EXPECT_TRUE(verify::check_order(g, best.order).ok());
}

}  // namespace
}  // namespace ais
