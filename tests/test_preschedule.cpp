// Differential tests for the cold-path pre-scheduling pipeline
// (LookaheadOptions::jobs / preschedule) and the Merge fill-depth cap
// (LookaheadOptions::fill_cap).
//
// The pipeline contract is byte identity: schedule_trace must produce the
// same planning order, per-block code, diagnostics and counter deltas at
// every jobs value, with the substrate donors adopted, seeded, or rejected
// by the backward-edge gate.  fill_cap changes emitted code by design, so
// its tests check the depth bound it promises and its membership in the
// schedule-cache key instead.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/lookahead.hpp"
#include "core/rank.hpp"
#include "core/schedule_cache.hpp"
#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"
#include "obs/obs.hpp"
#include "support/prng.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

void expect_same_lookahead(const LookaheadResult& got,
                           const LookaheadResult& want,
                           const std::string& what) {
  EXPECT_EQ(got.order, want.order) << what;
  EXPECT_EQ(got.per_block, want.per_block) << what;
  EXPECT_EQ(got.diag.merged_makespans, want.diag.merged_makespans) << what;
  EXPECT_EQ(got.diag.prefixes_emitted, want.diag.prefixes_emitted) << what;
  EXPECT_EQ(got.diag.max_inversion_span, want.diag.max_inversion_span) << what;
}

/// One serial reference and one parallel run over the same scheduler, both
/// bypassing the cache, both under a CounterRecorder; asserts byte and
/// counter-stream identity.
void expect_jobs_identity(const RankScheduler& scheduler,
                          const LookaheadOptions& base, int jobs,
                          const std::string& what) {
  ScheduleCache::ScopedBypass bypass;

  LookaheadOptions serial = base;
  serial.jobs = 1;
  LookaheadResult want;
  CounterDeltaMap want_deltas;
  {
    obs::CounterRecorder rec;
    want = schedule_trace(scheduler, serial);
    want_deltas = rec.deltas();
  }

  LookaheadOptions parallel = base;
  parallel.jobs = jobs;
  LookaheadResult got;
  CounterDeltaMap got_deltas;
  {
    obs::CounterRecorder rec;
    got = schedule_trace(scheduler, parallel);
    got_deltas = rec.deltas();
  }

  const std::string tag = what + " jobs=" + std::to_string(jobs);
  expect_same_lookahead(got, want, tag);
  EXPECT_EQ(got_deltas, want_deltas) << tag;
}

struct Regime {
  const char* name;
  MachineModel machine;
  int max_latency;
  int window;
};

std::vector<Regime> regimes() {
  return {
      {"scalar01-unit", scalar01(), 1, 4},
      {"rs6000-lat2", rs6000_like(), 2, 4},
      {"deep-lat3", deep_pipeline(), 3, 6},
      {"vliw4-lat2", vliw4(), 2, 4},
  };
}

// ---------------------------------------------------------------------------
// Byte identity across jobs values.
// ---------------------------------------------------------------------------

TEST(Preschedule, JobsByteIdenticalOnRandomTraces) {
  for (const Regime& regime : regimes()) {
    for (int round = 0; round < 6; ++round) {
      Prng prng(0x90b5 + static_cast<std::uint64_t>(round) * 7919);
      RandomTraceParams params;
      params.num_blocks = 5;
      params.block.num_nodes = 12;
      params.block.edge_prob = 0.3;
      params.block.max_latency = regime.max_latency;
      params.cross_edges = 3;
      const DepGraph g = random_trace(prng, params);
      const RankScheduler scheduler(g, regime.machine);

      LookaheadOptions opts;
      opts.window = regime.window;
      const std::string what =
          std::string(regime.name) + " round " + std::to_string(round);
      for (const int jobs : {2, 3, 8}) {
        expect_jobs_identity(scheduler, opts, jobs, what);
      }
    }
  }
}

TEST(Preschedule, JobsByteIdenticalOnMachineAndBoundaryTraces) {
  for (const Regime& regime : regimes()) {
    for (int round = 0; round < 4; ++round) {
      Prng prng(0xb0a7 + static_cast<std::uint64_t>(round) * 131);
      const DepGraph g = (round % 2 == 0)
          ? random_machine_trace(prng, regime.machine, 4, 10, 0.35, 2)
          : boundary_trace(prng, BoundaryTraceParams{
                .num_blocks = 5,
                .chain_len = 4,
                .independents = 4,
                .boundary_latency = regime.max_latency + 1,
            });
      const RankScheduler scheduler(g, regime.machine);

      LookaheadOptions opts;
      opts.window = regime.window;
      const std::string what = std::string(regime.name) + " gen-round " +
                               std::to_string(round);
      expect_jobs_identity(scheduler, opts, 8, what);
    }
  }
}

/// jobs <= 0 means "all hardware threads"; the degenerate block counts
/// (one block, empty-ish blocks) exercise the pool-size clamp.
TEST(Preschedule, JobsByteIdenticalOnDegenerateTraces) {
  const MachineModel machine = rs6000_like();
  {
    Prng prng(0x51);
    RandomTraceParams params;
    params.num_blocks = 1;
    params.block.num_nodes = 16;
    params.block.edge_prob = 0.3;
    params.block.max_latency = 2;
    params.cross_edges = 0;
    const DepGraph g = random_trace(prng, params);
    const RankScheduler scheduler(g, machine);
    LookaheadOptions opts;
    opts.window = 4;
    expect_jobs_identity(scheduler, opts, 8, "single-block");
    expect_jobs_identity(scheduler, opts, 0, "single-block hw-threads");
  }
  {
    Prng prng(0x52);
    RandomTraceParams params;
    params.num_blocks = 12;
    params.block.num_nodes = 2;
    params.block.edge_prob = 0.5;
    params.block.max_latency = 3;
    params.cross_edges = 1;
    const DepGraph g = random_trace(prng, params);
    const RankScheduler scheduler(g, machine);
    LookaheadOptions opts;
    opts.window = 2;
    expect_jobs_identity(scheduler, opts, 16, "tiny-blocks");
  }
}

/// preschedule = false must reduce jobs > 1 to the plain serial path.
TEST(Preschedule, DisabledPipelineMatchesSerial) {
  Prng prng(0x0ff);
  RandomTraceParams params;
  params.num_blocks = 4;
  params.block.num_nodes = 12;
  params.block.edge_prob = 0.3;
  params.block.max_latency = 2;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  const RankScheduler scheduler(g, rs6000_like());

  LookaheadOptions opts;
  opts.window = 4;
  opts.preschedule = false;
  expect_jobs_identity(scheduler, opts, 8, "preschedule-off");
}

/// The ablation that disables merge deadline caps also disables the
/// pipeline (the substrate contract assumes capped merges); jobs > 1 must
/// still match jobs = 1 there.
TEST(Preschedule, AblationWithoutDeadlineCapsMatchesSerial) {
  Prng prng(0xab1a);
  RandomTraceParams params;
  params.num_blocks = 4;
  params.block.num_nodes = 10;
  params.block.edge_prob = 0.3;
  params.block.max_latency = 2;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  const RankScheduler scheduler(g, rs6000_like());

  LookaheadOptions opts;
  opts.window = 4;
  opts.merge_deadline_caps = false;
  expect_jobs_identity(scheduler, opts, 8, "no-deadline-caps");
}

/// A distance-0 dependence from a later block back into an earlier one
/// invalidates the donated substrate (the standalone closure rows differ
/// from the union's); the seed gate must reject it and fall back to the
/// unseeded solve, still byte-identical to serial.
TEST(Preschedule, BackwardCrossEdgeGateFallsBack) {
  DepGraph g;
  const NodeId a0 = g.add_node("a0", 1, 0, 0);
  const NodeId a1 = g.add_node("a1", 1, 0, 0);
  const NodeId a2 = g.add_node("a2", 1, 0, 0);
  const NodeId a3 = g.add_node("a3", 1, 0, 0);
  const NodeId b0 = g.add_node("b0", 1, 0, 1);
  const NodeId b1 = g.add_node("b1", 1, 0, 1);
  const NodeId b2 = g.add_node("b2", 1, 0, 1);
  const NodeId b3 = g.add_node("b3", 1, 0, 1);
  g.add_edge(a0, a1, 2, 0);
  g.add_edge(a1, a2, 1, 0);
  g.add_edge(b0, b1, 2, 0);
  g.add_edge(b1, b2, 1, 0);
  g.add_edge(a0, b3, 1, 0);
  // The gate trigger: new-block b0 must precede old-block a3 in-iteration.
  g.add_edge(b0, a3, 1, 0);

  for (const MachineModel& machine : {scalar01(), rs6000_like()}) {
    const RankScheduler scheduler(g, machine);
    for (const int window : {2, 4}) {
      LookaheadOptions opts;
      opts.window = window;
      expect_jobs_identity(scheduler, opts, 8,
                           "backward-edge W" + std::to_string(window));
    }
  }
}

// ---------------------------------------------------------------------------
// Cache interaction: jobs is not part of the key.
// ---------------------------------------------------------------------------

/// A trace compiled at jobs = 8 must populate the same cache entry a
/// jobs = 1 compile consumes (and vice versa): outputs are identical, so
/// jobs is deliberately absent from the key.
TEST(Preschedule, CacheEntriesSharedAcrossJobs) {
  ScheduleCache& cache = ScheduleCache::global();
  const bool was_enabled = cache.enabled();
  cache.set_enabled(true);
  cache.clear();

  Prng prng(0x5a5a);
  RandomTraceParams params;
  params.num_blocks = 4;
  params.block.num_nodes = 12;
  params.block.edge_prob = 0.3;
  params.block.max_latency = 2;
  params.cross_edges = 2;
  const DepGraph g = random_trace(prng, params);
  const RankScheduler scheduler(g, deep_pipeline());

  LookaheadOptions opts;
  opts.window = 6;

  LookaheadResult want;
  CounterDeltaMap want_deltas;
  {
    ScheduleCache::ScopedBypass bypass;
    obs::CounterRecorder rec;
    want = schedule_trace(scheduler, opts);
    want_deltas = rec.deltas();
  }

  // Cold populate at jobs = 8.
  opts.jobs = 8;
  {
    obs::CounterRecorder rec;
    const LookaheadResult got = schedule_trace(scheduler, opts);
    expect_same_lookahead(got, want, "cold jobs=8");
    EXPECT_EQ(rec.deltas(), want_deltas) << "cold jobs=8";
  }

  // Warm consume at jobs = 1: a trace-level hit replaying identical bytes.
  opts.jobs = 1;
  const std::uint64_t hits_before = obs::counter_value(obs::ctr::kCacheHits);
  {
    obs::CounterRecorder rec;
    const LookaheadResult got = schedule_trace(scheduler, opts);
    expect_same_lookahead(got, want, "warm jobs=1");
    EXPECT_EQ(rec.deltas(), want_deltas) << "warm jobs=1";
  }
  if (obs::enabled()) {
    EXPECT_GT(obs::counter_value(obs::ctr::kCacheHits), hits_before);
  }

  cache.set_enabled(was_enabled);
}

// ---------------------------------------------------------------------------
// fill_cap: the W-capped Merge fill depth.
// ---------------------------------------------------------------------------

/// Number of fill-depth violations in a planning order: pairs where an
/// earlier-block node follows a later-block node by more than `cap`
/// positions-of-old.  For every node, counts the earlier-block nodes that
/// appear after it and checks the count against the cap.
std::size_t fill_violations(const DepGraph& g,
                            const std::vector<NodeId>& order, int cap) {
  std::size_t violations = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int my_block = g.node(order[i]).block;
    int older_after = 0;
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      if (g.node(order[j]).block < my_block) ++older_after;
    }
    if (older_after > cap) ++violations;
  }
  return violations;
}

/// With fill_cap = C on a two-block trace, at most C first-block nodes may
/// follow any second-block node in the final planning order.  (Two blocks
/// keep the bound exact: the capped iteration's planning order is the
/// final order's tail, and every emitted first-block instruction precedes
/// it.)  The uncapped runs must violate the bound somewhere across the
/// sweep, or the cap would be vacuous here.
TEST(FillCap, BoundsRetainedOldDepthOnTwoBlockTraces) {
  ScheduleCache::ScopedBypass bypass;
  std::size_t uncapped_violations = 0;
  for (const Regime& regime : regimes()) {
    for (int round = 0; round < 4; ++round) {
      Prng prng(0xf111 + static_cast<std::uint64_t>(round) * 257);
      const DepGraph g = boundary_trace(prng, BoundaryTraceParams{
          .num_blocks = 2,
          .chain_len = 6,
          .independents = 6,
          .boundary_latency = regime.max_latency + 2,
      });
      const RankScheduler scheduler(g, regime.machine);

      LookaheadOptions opts;
      opts.window = regime.window;
      const LookaheadResult uncapped = schedule_trace(scheduler, opts);

      for (const int cap : {1, 2, 4}) {
        opts.fill_cap = cap;
        const LookaheadResult capped = schedule_trace(scheduler, opts);
        EXPECT_EQ(fill_violations(g, capped.order, cap), 0u)
            << regime.name << " round " << round << " cap " << cap;
        uncapped_violations += fill_violations(g, uncapped.order, cap);
      }
      opts.fill_cap = 0;
    }
  }
  EXPECT_GT(uncapped_violations, 0u)
      << "uncapped Merge never filled deeper than the smallest cap; the "
         "cap tests above are vacuous";
}

/// A cap at least as large as the trace is a no-op: byte-identical to
/// fill_cap = 0, diagnostics included.
TEST(FillCap, LargeCapMatchesUncapped) {
  ScheduleCache::ScopedBypass bypass;
  for (const Regime& regime : regimes()) {
    Prng prng(0xca9);
    RandomTraceParams params;
    params.num_blocks = 4;
    params.block.num_nodes = 10;
    params.block.edge_prob = 0.3;
    params.block.max_latency = regime.max_latency;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    const RankScheduler scheduler(g, regime.machine);

    LookaheadOptions opts;
    opts.window = regime.window;
    const LookaheadResult uncapped = schedule_trace(scheduler, opts);
    opts.fill_cap = static_cast<int>(g.num_nodes());
    const LookaheadResult capped = schedule_trace(scheduler, opts);
    expect_same_lookahead(capped, uncapped, regime.name);
  }
}

/// fill_cap is part of the schedule-cache key: a capped compile after an
/// uncapped compile of the same instance must not be served the uncapped
/// entry (and vice versa).
TEST(FillCap, IsPartOfCacheKey) {
  ScheduleCache& cache = ScheduleCache::global();
  const bool was_enabled = cache.enabled();
  cache.set_enabled(true);
  cache.clear();

  bool outputs_differed = false;
  for (int round = 0; round < 4 && !outputs_differed; ++round) {
    Prng prng(0x6e1 + static_cast<std::uint64_t>(round) * 101);
    const DepGraph g = boundary_trace(prng, BoundaryTraceParams{
        .num_blocks = 3,
        .chain_len = 6,
        .independents = 6,
        .boundary_latency = 4,
    });
    const RankScheduler scheduler(g, vliw4());

    LookaheadOptions opts;
    opts.window = 4;

    LookaheadResult uncapped_ref;
    LookaheadResult capped_ref;
    {
      ScheduleCache::ScopedBypass bypass;
      uncapped_ref = schedule_trace(scheduler, opts);
      opts.fill_cap = 1;
      capped_ref = schedule_trace(scheduler, opts);
      opts.fill_cap = 0;
    }
    outputs_differed = capped_ref.order != uncapped_ref.order;

    // Populate with the uncapped entry, then compile capped with the
    // cache on: it must match the capped reference, not the cached
    // uncapped schedule.
    const LookaheadResult uncapped = schedule_trace(scheduler, opts);
    expect_same_lookahead(uncapped, uncapped_ref, "uncapped cache-on");
    opts.fill_cap = 1;
    const LookaheadResult capped = schedule_trace(scheduler, opts);
    expect_same_lookahead(capped, capped_ref, "capped cache-on");
  }
  EXPECT_TRUE(outputs_differed)
      << "fill_cap never changed the schedule; the key-separation check "
         "is vacuous";

  cache.set_enabled(was_enabled);
}

/// jobs and fill_cap compose: the capped pipeline at jobs = 8 matches the
/// capped serial path byte for byte.
TEST(FillCap, ComposesWithPreschedule) {
  Prng prng(0xc0de);
  const DepGraph g = boundary_trace(prng, BoundaryTraceParams{
      .num_blocks = 5,
      .chain_len = 5,
      .independents = 5,
      .boundary_latency = 4,
  });
  const RankScheduler scheduler(g, deep_pipeline());

  LookaheadOptions opts;
  opts.window = 6;
  opts.fill_cap = 2;
  expect_jobs_identity(scheduler, opts, 8, "fill_cap=2");
}

}  // namespace
}  // namespace ais
