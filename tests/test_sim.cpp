// Tests for the lookahead machine simulator: golden executions from the
// paper, and the structural invariants the model implies.
#include <gtest/gtest.h>

#include "baselines/block_schedulers.hpp"
#include "core/rank.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "sim/loop_sim.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

std::vector<NodeId> by_names(const DepGraph& g,
                             std::initializer_list<const char*> names) {
  std::vector<NodeId> ids;
  for (const char* n : names) ids.push_back(g.find(n));
  return ids;
}

TEST(Sim, Fig2EmittedCodeRunsIn11CyclesAtW2) {
  const DepGraph g = fig2_trace();
  const auto list = by_names(
      g, {"x", "e", "r", "w", "b", "a", "z", "q", "p", "v", "g"});
  const SimResult r = simulate_list(g, scalar01(), list, 2);
  EXPECT_EQ(r.completion, 11);
  // z issues at cycle 5, before a (the in-window inversion of the example).
  EXPECT_EQ(r.issue_time[g.find("z")], 5);
  EXPECT_EQ(r.issue_time[g.find("a")], 6);
}

TEST(Sim, WindowOneIsStrictInOrder) {
  const DepGraph g = fig2_trace();
  const auto list = by_names(
      g, {"x", "e", "r", "w", "b", "a", "z", "q", "p", "v", "g"});
  const SimResult r = simulate_list(g, scalar01(), list, 1);
  Time prev = -1;
  for (const NodeId id : list) {
    EXPECT_GT(r.issue_time[id], prev);
    prev = r.issue_time[id];
  }
  // In-order: a stalls on w/b, z issues only after a, q stalls on z, g on p:
  // x e r w b . a z . q p v g = 13 cycles.
  EXPECT_EQ(r.completion, 13);
}

TEST(Sim, CompletionIsNonincreasingInWindow) {
  Prng prng(0x51a1);
  for (int trial = 0; trial < 12; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 3;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 9));
    params.block.edge_prob = 0.35;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    const auto list =
        schedule_trace_per_block(g, scalar01(), BlockScheduler::kSourceOrder);
    Time prev = simulated_completion(g, scalar01(), list, 1);
    for (const int w : {2, 3, 4, 8, 16, 64}) {
      const Time cur = simulated_completion(g, scalar01(), list, w);
      EXPECT_LE(cur, prev) << "W=" << w;
      prev = cur;
    }
  }
}

TEST(Sim, HugeWindowEqualsGreedyListSchedule) {
  Prng prng(0x9d9d);
  for (int trial = 0; trial < 10; ++trial) {
    RandomBlockParams params;
    params.num_nodes = 10;
    params.edge_prob = 0.3;
    const DepGraph g = random_block(prng, params);
    const MachineModel machine = scalar01();
    const RankScheduler scheduler(g, machine);
    const NodeSet all = NodeSet::all(g.num_nodes());
    const std::vector<NodeId> list = all.ids();
    const Schedule greedy = scheduler.greedy_from_list(all, list);
    EXPECT_EQ(simulated_completion(g, machine, list, 64), greedy.makespan());
  }
}

TEST(Sim, StallCyclesAccountedFor) {
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, 1);
  const SimResult r = simulate_list(g, scalar01(), {a, b}, 4);
  EXPECT_EQ(r.completion, 3);
  EXPECT_EQ(r.stall_cycles, 1);
}

TEST(Sim, RespectsIssueWidthAndUnitTyping) {
  const MachineModel machine = vliw4();
  DepGraph g;
  // Five independent int-ALU ops: only 2 int units -> at least 3 cycles.
  for (int i = 0; i < 5; ++i) {
    g.add_node("op" + std::to_string(i), 1,
               machine.timing(OpClass::kIntAlu).fu_class, 0);
  }
  std::vector<NodeId> list;
  for (NodeId id = 0; id < 5; ++id) list.push_back(id);
  const SimResult r = simulate_list(g, machine, list, 8);
  EXPECT_EQ(r.completion, 3);
}

TEST(Sim, ExecTimesOccupyUnits) {
  const MachineModel machine = deep_pipeline();
  DepGraph g;
  g.add_node("div", 4, 0, 0);  // 4-cycle occupancy
  g.add_node("alu", 1, 0, 0);
  const SimResult r = simulate_list(g, machine, {0, 1}, 4);
  EXPECT_EQ(r.issue_time[1], 4);  // unit busy until the divide retires
  EXPECT_EQ(r.completion, 5);
}

TEST(LoopSim, Fig3ScheduleOneVsTwoAtWindowOne) {
  const DepGraph g = fig3_loop();
  const MachineModel machine = scalar01();
  const auto sched1 = by_names(g, {"L4", "ST", "C4", "M", "BT"});
  const auto sched2 = by_names(g, {"L4", "ST", "M", "C4", "BT"});
  // Paper: block-optimal schedule 1 runs one iteration every 7 cycles in
  // steady state; anticipatory schedule 2 every 6.
  EXPECT_DOUBLE_EQ(steady_state_period(g, machine, sched1, 1), 7.0);
  EXPECT_DOUBLE_EQ(steady_state_period(g, machine, sched2, 1), 6.0);
  // Single-iteration completion: 5 vs 6 (also per the paper).
  EXPECT_EQ(simulate_loop(g, machine, sched1, 1, 1).completion, 5);
  EXPECT_EQ(simulate_loop(g, machine, sched2, 1, 1).completion, 6);
}

TEST(LoopSim, Fig8OrdersAtWindowOne) {
  const DepGraph g = fig8_loop();
  const MachineModel machine = scalar01();
  const auto s1 = by_names(g, {"1", "2", "3"});
  const auto s2 = by_names(g, {"2", "1", "3"});
  const int n = 12;
  // Paper: completion 5n - 1 vs 4n.
  EXPECT_EQ(simulate_loop(g, machine, s1, 1, n).completion, 5 * n - 1);
  EXPECT_EQ(simulate_loop(g, machine, s2, 1, n).completion, 4 * n);
}

TEST(LoopSim, IterationFinishTimesAreMonotone) {
  const DepGraph g = fig3_loop();
  const LoopSimResult r =
      simulate_loop(g, scalar01(), by_names(g, {"L4", "ST", "M", "C4", "BT"}),
                    4, 10);
  ASSERT_EQ(r.iteration_finish.size(), 10u);
  for (std::size_t k = 1; k < r.iteration_finish.size(); ++k) {
    EXPECT_GT(r.iteration_finish[k], r.iteration_finish[k - 1]);
  }
  EXPECT_EQ(r.completion, r.iteration_finish.back());
}

TEST(LoopSim, SteadyStatePeriodBoundedByCarriedRecurrence) {
  // M->M <4,1> forces at least 5 cycles per iteration regardless of order
  // or window (start-to-start >= exec + latency).
  const DepGraph g = fig3_loop();
  for (const int w : {1, 2, 4, 8}) {
    const double p = steady_state_period(
        g, scalar01(), {0, 1, 2, 3, 4}, w);
    EXPECT_GE(p, 5.0) << "W=" << w;
  }
}

/// Brute-force oracle for simulate_loop: materialize the completely
/// unrolled trace as an ordinary DAG — instance v[k] constrained against
/// u[k - distance] per <latency, distance> edge, early iterations'
/// out-of-range sources satisfied by pre-loop state — and run it through
/// the straight-line simulator.  Paper §5's equivalence, checked exactly.
DepGraph unroll_loop(const DepGraph& g, int iterations) {
  DepGraph u;
  const NodeId body = g.num_nodes();
  for (int k = 0; k < iterations; ++k) {
    for (NodeId id = 0; id < body; ++id) {
      const NodeInfo& info = g.node(id);
      u.add_node(info.name + "#" + std::to_string(k), info.exec_time,
                 info.fu_class, k);
    }
  }
  for (int k = 0; k < iterations; ++k) {
    for (std::size_t idx = 0; idx < g.num_edges(); ++idx) {
      const DepEdge& e = g.edge(idx);
      const int src_iter = k - e.distance;
      if (src_iter < 0) continue;
      u.add_edge(static_cast<NodeId>(src_iter) * body + e.from,
                 static_cast<NodeId>(k) * body + e.to, e.latency,
                 /*distance=*/0);
    }
  }
  return u;
}

TEST(LoopSim, MatchesUnrolledBruteForce) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Prng prng(0x10095 + seed * 401);
    RandomLoopParams params;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 9));
    params.block.edge_prob = 0.35;
    params.block.max_latency = 2;
    params.carried_edges = 3;
    const DepGraph g = random_loop(prng, params);
    std::vector<NodeId> list;
    for (NodeId id = 0; id < g.num_nodes(); ++id) list.push_back(id);

    for (const int window : {1, 2, 4}) {
      for (const int iterations : {1, 3, 7}) {
        const LoopSimResult got =
            simulate_loop(g, scalar01(), list, window, iterations);

        const DepGraph u = unroll_loop(g, iterations);
        std::vector<NodeId> unrolled_list;
        for (int k = 0; k < iterations; ++k) {
          for (const NodeId id : list) {
            unrolled_list.push_back(
                static_cast<NodeId>(k) * g.num_nodes() + id);
          }
        }
        const SimResult want =
            simulate_list(u, scalar01(), unrolled_list, window);

        EXPECT_EQ(got.completion, want.completion)
            << "seed " << seed << " W=" << window << " n=" << iterations;
        ASSERT_EQ(got.iteration_finish.size(),
                  static_cast<std::size_t>(iterations));
        for (int k = 0; k < iterations; ++k) {
          Time finish = 0;
          for (NodeId id = 0; id < g.num_nodes(); ++id) {
            const NodeId q = static_cast<NodeId>(k) * g.num_nodes() + id;
            finish = std::max(finish,
                              want.issue_time[q] + u.node(q).exec_time);
          }
          EXPECT_EQ(got.iteration_finish[static_cast<std::size_t>(k)], finish)
              << "seed " << seed << " W=" << window << " iteration " << k;
        }
      }
    }
  }
}

TEST(LoopSim, SteadyStatePeriodMatchesUnrolledSlope) {
  Prng prng(0x57ead);
  RandomLoopParams params;
  params.block.num_nodes = 6;
  params.block.edge_prob = 0.4;
  params.block.max_latency = 2;
  params.carried_edges = 2;
  const DepGraph g = random_loop(prng, params);
  std::vector<NodeId> list;
  for (NodeId id = 0; id < g.num_nodes(); ++id) list.push_back(id);

  constexpr int kIters = 16;
  const DepGraph u = unroll_loop(g, kIters);
  std::vector<NodeId> unrolled_list;
  for (int k = 0; k < kIters; ++k) {
    for (const NodeId id : list) {
      unrolled_list.push_back(static_cast<NodeId>(k) * g.num_nodes() + id);
    }
  }
  for (const int window : {1, 4}) {
    const SimResult flat = simulate_list(u, scalar01(), unrolled_list, window);
    std::vector<Time> finish(kIters, 0);
    for (NodeId q = 0; q < u.num_nodes(); ++q) {
      auto& f = finish[q / g.num_nodes()];
      f = std::max(f, flat.issue_time[q] + u.node(q).exec_time);
    }
    const double want =
        static_cast<double>(finish[kIters - 1] - finish[(kIters - 1) / 2]) /
        static_cast<double>(kIters - 1 - (kIters - 1) / 2);
    EXPECT_DOUBLE_EQ(
        steady_state_period(g, scalar01(), list, window, kIters), want)
        << "W=" << window;
  }
}

TEST(LoopSim, WiderWindowNeverSlowsLoops) {
  Prng prng(0x100b);
  for (int trial = 0; trial < 8; ++trial) {
    RandomLoopParams params;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 8));
    params.block.edge_prob = 0.3;
    params.carried_edges = 2;
    const DepGraph g = random_loop(prng, params);
    std::vector<NodeId> order;
    for (NodeId id = 0; id < g.num_nodes(); ++id) order.push_back(id);
    double prev = steady_state_period(g, scalar01(), order, 1);
    for (const int w : {2, 4, 8}) {
      const double cur = steady_state_period(g, scalar01(), order, w);
      EXPECT_LE(cur, prev + 1e-9) << "W=" << w;
      prev = cur;
    }
  }
}

}  // namespace
}  // namespace ais
