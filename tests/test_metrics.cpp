// Tests for the metrics layer: log-bucketed histogram exactness against a
// sorted-vector oracle, snapshot merge algebra, the labeled registry and
// its Prometheus/JSON exposition, the telemetry fast paths surviving
// reset(), CounterRecorder value replay, schedule byte-identity with
// metrics on/off, and the crash flight recorder (in-process dumps plus the
// deliberate-abort subprocess fixture).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/schedule_cache.hpp"
#include "driver/anticipatory.hpp"
#include "ir/asm_parser.hpp"
#include "machine/machine_model.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

#ifndef AIS_FLIGHT_ABORT_BINARY
#error "AIS_FLIGHT_ABORT_BINARY must point at the flight_abort fixture"
#endif

namespace ais {
namespace {

/// Resets the process-global telemetry state for one test (the registry
/// keeps its registrations — snapshot assertions search by name).
void fresh(bool enabled) {
  obs::set_flight_enabled(false);
  obs::set_trace_enabled(false);
  obs::set_enabled(false);
  obs::reset();
  obs::flight_reset();
  if (enabled) obs::set_enabled(true);
}

// --- histogram buckets and quantiles ------------------------------------

TEST(Histogram, BucketBoundsAreStrictlyIncreasing) {
  for (std::size_t i = 0; i + 1 < obs::kHistogramBuckets; ++i) {
    ASSERT_LT(obs::kHistogramBucketBounds[i],
              obs::kHistogramBucketBounds[i + 1])
        << "bucket " << i;
  }
  EXPECT_EQ(obs::kHistogramBucketBounds.back(), ~0ULL);
}

TEST(Histogram, BucketIndexAgreesWithTheBounds) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 2ULL, 9ULL, 10ULL, 11ULL, 997ULL, 123456789ULL,
        ~0ULL}) {
    const std::size_t i = obs::histogram_bucket_index(v);
    EXPECT_LE(v, obs::kHistogramBucketBounds[i]) << v;
    if (i > 0) {
      EXPECT_GT(v, obs::kHistogramBucketBounds[i - 1]) << v;
    }
  }
}

TEST(Histogram, QuantilesBracketTheSortedVectorOracle) {
  std::mt19937_64 rng(0x5eed);
  std::vector<std::uint64_t> values;
  obs::Histogram h;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform spread exercises every bucket width class.
    const std::uint64_t v =
        rng() % (1ULL << (1 + rng() % 24));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const obs::HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const std::uint64_t oracle = values[std::max<std::size_t>(rank, 1) - 1];
    const obs::HistogramSnapshot::Bounds b = h.snapshot().quantile_bounds(q);
    EXPECT_LE(oracle, b.hi) << "q=" << q;
    if (b.lo > 0) {
      EXPECT_GT(oracle, b.lo) << "q=" << q;
    }
    EXPECT_EQ(snap.quantile(q), b.hi) << "q=" << q;
  }
  // The top quantile is clamped to the exact maximum.
  EXPECT_EQ(snap.quantile(1.0), values.back());
  EXPECT_EQ(snap.max, values.back());
}

TEST(Histogram, MergeIsAssociativeAndMatchesSingleRecorder) {
  obs::Histogram parts[3], whole;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = rng() % (1ULL << (i % 30));
    parts[i % 3].record(v);
    whole.record(v);
  }
  const obs::HistogramSnapshot a = parts[0].snapshot();
  const obs::HistogramSnapshot b = parts[1].snapshot();
  const obs::HistogramSnapshot c = parts[2].snapshot();
  obs::HistogramSnapshot ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  obs::HistogramSnapshot bc = b;
  bc.merge(c);
  obs::HistogramSnapshot a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, whole.snapshot());
}

TEST(Histogram, ConcurrentRecordsLoseNothing) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kRecords = 20000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&h, w] {
      for (int i = 0; i < kRecords; ++i) {
        h.record(static_cast<std::uint64_t>(w * kRecords + i) % 4096);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kRecords);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t n : snap.counts) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(snap.max, 4095u);
}

// --- labeled registry and exposition ------------------------------------

TEST(Metrics, LabelPairsAreCanonicalizedBySortOrder) {
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  obs::Counter* ab = reg.counter("unit.canon", {"a", "1"}, {"b", "2"});
  obs::Counter* ba = reg.counter("unit.canon", {"b", "2"}, {"a", "1"});
  EXPECT_EQ(ab, ba);
  obs::Counter* other = reg.counter("unit.canon", {"a", "1"}, {"b", "9"});
  EXPECT_NE(ab, other);
}

TEST(Metrics, PrometheusExpositionFollowsTheConventions) {
  fresh(/*enabled=*/false);
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  reg.counter("unit.prom.requests", {"outcome", "hit"})->add(3);
  obs::Histogram* h = reg.histogram("unit.prom.lat_us", {"shard", "3"});
  h->record(1);
  h->record(900);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE unit_prom_requests counter"),
            std::string::npos) << text;
  EXPECT_NE(text.find("unit_prom_requests{outcome=\"hit\"} 3"),
            std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE unit_prom_lat_us histogram"),
            std::string::npos) << text;
  EXPECT_NE(text.find("unit_prom_lat_us_bucket{shard=\"3\",le=\"+Inf\"} 2"),
            std::string::npos) << text;
  EXPECT_NE(text.find("unit_prom_lat_us_sum{shard=\"3\"} 901"),
            std::string::npos) << text;
  EXPECT_NE(text.find("unit_prom_lat_us_count{shard=\"3\"} 2"),
            std::string::npos) << text;
}

TEST(Metrics, JsonSnapshotCarriesQuantilesAndBuckets) {
  fresh(/*enabled=*/false);
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  obs::Histogram* h = reg.histogram("unit.json.lat_us");
  for (int i = 1; i <= 100; ++i) h->record(static_cast<std::uint64_t>(i));
  const std::string text = reg.json_text();
  EXPECT_NE(text.find("\"schema\""), std::string::npos);
  EXPECT_NE(text.find("\"unit.json.lat_us\""), std::string::npos);
  EXPECT_NE(text.find("\"p50\""), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 100"), std::string::npos) << text;
}

TEST(Metrics, AsciiReportDrawsBucketBars) {
  fresh(/*enabled=*/false);
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  obs::Histogram* h = reg.histogram("unit.ascii.lat_us");
  for (int i = 0; i < 64; ++i) h->record(5);
  const std::string report = reg.ascii_report();
  EXPECT_NE(report.find("unit.ascii.lat_us"), std::string::npos) << report;
  EXPECT_NE(report.find('#'), std::string::npos) << report;
}

TEST(Metrics, ResetValuesKeepsRegistrationsAndHandles) {
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  obs::Counter* c = reg.counter("unit.reset.survivor");
  c->add(7);
  reg.reset_values();
  EXPECT_EQ(c->value(), 0u);  // the handle is still the live series
  c->add(2);
  EXPECT_EQ(reg.counter("unit.reset.survivor")->value(), 2u);
}

TEST(Metrics, PrometheusNameSanitizesLegacyDottedNames) {
  EXPECT_EQ(obs::prometheus_name("cache.hits"), "cache_hits");
  EXPECT_EQ(obs::prometheus_name("time.pool_run_us"), "time_pool_run_us");
  EXPECT_EQ(obs::prometheus_name("9lives"), "ais_9lives");
}

// --- telemetry fast paths across reset ----------------------------------

TEST(MetricsObs, CountMacroSurvivesRegistryReset) {
  fresh(/*enabled=*/true);
  for (int round = 0; round < 3; ++round) {
    AIS_OBS_COUNT("unit.fastpath.bump");
    AIS_OBS_COUNT("unit.fastpath.bump", 2);
    EXPECT_EQ(obs::counter_value("unit.fastpath.bump"), 3u)
        << "round " << round;
    obs::reset();  // invalidates the call-site memo; next round re-resolves
  }
}

TEST(MetricsObs, SpanMacroAggregatesAfterReset) {
  fresh(/*enabled=*/true);
  for (int round = 0; round < 2; ++round) {
    { AIS_OBS_SPAN("unit.fastpath.phase"); }
    { AIS_OBS_SPAN("unit.fastpath.phase"); }
    const auto totals = obs::phase_totals();
    const auto it = std::find_if(
        totals.begin(), totals.end(),
        [](const obs::PhaseTotal& p) {
          return p.name == "unit.fastpath.phase";
        });
    ASSERT_NE(it, totals.end()) << "round " << round;
    EXPECT_EQ(it->calls, 2u) << "round " << round;
    obs::reset();
  }
}

TEST(MetricsObs, RecordValueLandsInTheGlobalRegistry) {
  fresh(/*enabled=*/true);
  obs::record_value("unit.value.lat_us", 10);
  obs::record_value("unit.value.lat_us", 20);
  bool found = false;
  for (const obs::MetricSeries& s :
       obs::MetricRegistry::global().snapshot()) {
    if (s.name == "unit.value.lat_us" && s.labels.empty()) {
      found = true;
      EXPECT_EQ(s.hist.count, 2u);
      EXPECT_EQ(s.hist.sum, 30u);
    }
  }
  EXPECT_TRUE(found);
}

// --- CounterRecorder histogram replay -----------------------------------

TEST(MetricsObs, RecorderCapturesAndReplaysValueSamplesInOrder) {
  fresh(/*enabled=*/false);
  obs::CounterRecorder::ValueSamples samples;
  {
    obs::CounterRecorder rec;
    obs::record_value("unit.replay.len", 4);
    obs::record_value("unit.replay.len", 9);
    obs::record_value("unit.replay.other", 1);
    samples = rec.value_samples();
  }
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples.at("unit.replay.len"),
            (std::vector<std::uint64_t>{4, 9}));

  // Replaying with telemetry on must land the same stream in the registry
  // (this is what makes cache hits histogram-identical to fresh solves).
  obs::set_enabled(true);
  obs::CounterRecorder::replay_values(samples);
  for (const obs::MetricSeries& s :
       obs::MetricRegistry::global().snapshot()) {
    if (s.name == "unit.replay.len") {
      EXPECT_EQ(s.hist.count, 2u);
      EXPECT_EQ(s.hist.sum, 13u);
    }
  }
}

TEST(MetricsObs, RecorderSkipsWallClockAndCacheDistributions) {
  fresh(/*enabled=*/false);
  obs::CounterRecorder rec;
  obs::record_value("time.unit.wall_us", 123);
  obs::record_value("cache.unit.lat_us", 456);
  EXPECT_TRUE(rec.value_samples().empty());
}

// --- schedule byte-identity with metrics on/off -------------------------

const char* kTwoBlocks = R"(
block A:
  LDU r1, x[r2+0]
  ADD r3, r1, r1
  MUL r4, r3, r1
  STU y[r2+0], r4
  CMP c1, r4, 0
  BT  c1, B
block B:
  LDU r5, x[r2+4]
  ADD r6, r5, r4
  STU y[r2+4], r6
)";

std::string emitted_text(const ScheduledTrace& s) {
  std::ostringstream out;
  for (const BasicBlock& bb : s.blocks) {
    out << bb.label << ":\n";
    for (const Instruction& inst : bb.insts) out << inst.to_string() << "\n";
  }
  return out.str();
}

TEST(MetricsObs, SchedulesAreByteIdenticalWithMetricsOnOrOff) {
  ScheduleCache::ScopedBypass bypass;
  const Program prog = parse_program(kTwoBlocks);
  const MachineModel& machine = *machine_preset("rs6000");
  for (const int jobs : {1, 8}) {
    fresh(/*enabled=*/false);
    const std::string off =
        emitted_text(schedule(Trace{prog.blocks}, machine, 0, {}, jobs));
    fresh(/*enabled=*/true);
    obs::set_flight_enabled(true);
    const std::string on =
        emitted_text(schedule(Trace{prog.blocks}, machine, 0, {}, jobs));
    EXPECT_EQ(off, on) << "jobs=" << jobs;
  }
  fresh(/*enabled=*/false);
}

// --- flight recorder ----------------------------------------------------

TEST(Flight, DumpContainsRecentSpansCountersAndHistograms) {
  fresh(/*enabled=*/true);
  obs::set_flight_enabled(true);
  obs::count("unit.flight.beat", 5);
  obs::record_value("unit.flight.lat_us", 42);
  { AIS_OBS_SPAN("unit.flight.phase"); }
  obs::flight_record("unit.flight.point", 'P', 99);
  const std::string dump = obs::flight_dump_string();
  obs::set_flight_enabled(false);
  EXPECT_NE(dump.find("AIS-FLIGHT-DUMP v1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("unit.flight.phase"), std::string::npos) << dump;
  EXPECT_NE(dump.find("unit.flight.point"), std::string::npos) << dump;
  EXPECT_NE(dump.find("== counters =="), std::string::npos) << dump;
  EXPECT_NE(dump.find("unit.flight.beat"), std::string::npos) << dump;
  EXPECT_NE(dump.find("== histograms =="), std::string::npos) << dump;
  EXPECT_NE(dump.find("== end =="), std::string::npos) << dump;
}

TEST(Flight, RingsAreBoundedAndKeepTheNewestEvents) {
  fresh(/*enabled=*/false);
  obs::set_flight_enabled(true);
  obs::set_flight_ring_entries(16);
  std::thread([] {
    // A fresh thread gets a fresh (16-entry) ring; overflow it.
    for (int i = 0; i < 100; ++i) {
      obs::flight_record(i < 80 ? "unit.ring.old" : "unit.ring.new", 'P',
                         static_cast<std::uint64_t>(i));
    }
  }).join();
  const std::string dump = obs::flight_dump_string();
  obs::set_flight_enabled(false);
  obs::set_flight_ring_entries(obs::kFlightRingDefaultEntries);
  EXPECT_NE(dump.find("cap 16"), std::string::npos) << dump;
  EXPECT_NE(dump.find("unit.ring.new"), std::string::npos) << dump;
  // 80 old then 20 new events through a 16-deep ring: every survivor is
  // one of the newest 16, all of them "new".
  EXPECT_EQ(dump.find("unit.ring.old"), std::string::npos) << dump;
}

TEST(Flight, AbortFixtureLeavesAParseableDumpNamingTheCrashingPhase) {
  const std::string dir = ::testing::TempDir() + "/flight_abort";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  const std::string cmd = "AIS_FLIGHT_DIR=" + dir + " " +
                          AIS_FLIGHT_ABORT_BINARY + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, 0) << "the fixture must die by SIGABRT";

  std::string dump_path;
  if (DIR* d = opendir(dir.c_str())) {
    while (dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name.rfind("ais-crash-", 0) == 0 &&
          name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".dump") == 0) {
        dump_path = dir + "/" + name;
      }
    }
    closedir(d);
  }
  ASSERT_FALSE(dump_path.empty()) << "no ais-crash-*.dump under " << dir;

  std::ifstream in(dump_path);
  std::ostringstream text;
  text << in.rdbuf();
  const std::string dump = text.str();
  EXPECT_NE(dump.find("AIS-FLIGHT-DUMP v1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("signal: 6"), std::string::npos) << dump;
  EXPECT_NE(dump.find("doomed.phase"), std::string::npos) << dump;
  EXPECT_NE(dump.find("fixture.heartbeat"), std::string::npos) << dump;
  EXPECT_NE(dump.find("== end =="), std::string::npos) << dump;
}

}  // namespace
}  // namespace ais
