// Tests for local register renaming: dependence reduction, semantic
// preservation (architectural state), and its effect on scheduling freedom.
#include <gtest/gtest.h>

#include "baselines/block_schedulers.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "ir/interp.hpp"
#include "ir/rename.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "workloads/random_ir.hpp"

namespace ais {
namespace {

/// Counts WAR/WAW-ish edges: distance-0 edges with latency 0 between nodes
/// where the successor *defines* a register the predecessor touches.
std::size_t edge_count(const BasicBlock& bb, const MachineModel& machine) {
  return build_block_graph(bb, machine).num_edges();
}

TEST(Rename, BreaksWawChains) {
  const BasicBlock bb = parse_block(R"(
    LI  r1, 1
    ADD r2, r1, r1
    LI  r1, 2
    ADD r3, r1, r1
    LI  r1, 3
  )");
  RenameStats stats;
  const BasicBlock renamed = rename_block(bb, {}, &stats);
  EXPECT_EQ(stats.defs_renamed, 2);  // the first two LI r1 become temps
  EXPECT_FALSE(stats.pool_exhausted);
  // The final def still lands in r1.
  EXPECT_EQ(renamed.insts.back().defs[0], gpr(1));
  // The uses follow their defs.
  EXPECT_EQ(renamed.insts[1].uses[0], renamed.insts[0].defs[0]);
  EXPECT_EQ(renamed.insts[3].uses[0], renamed.insts[2].defs[0]);
  EXPECT_LT(edge_count(renamed, scalar01()), edge_count(bb, scalar01()));
}

TEST(Rename, PreservesArchitecturalSemantics) {
  Prng prng(0x4e4a);
  for (int trial = 0; trial < 20; ++trial) {
    RandomIrParams params;
    params.num_insts = static_cast<int>(prng.uniform(4, 16));
    params.num_gprs = static_cast<int>(prng.uniform(2, 6));
    params.mem_frac = prng.uniform01() * 0.5;
    const BasicBlock bb = random_ir_block(prng, params);
    const BasicBlock renamed = rename_block(bb);
    const InterpState init = InterpState::random(prng());
    EXPECT_TRUE(run_block(renamed, init)
                    .equal_architectural(run_block(bb, init), 128))
        << "trial " << trial;
  }
}

TEST(Rename, NeverIncreasesDependenceEdges) {
  Prng prng(0x4e4b);
  for (int trial = 0; trial < 15; ++trial) {
    RandomIrParams params;
    params.num_insts = 12;
    params.num_gprs = 3;  // heavy register reuse
    const BasicBlock bb = random_ir_block(prng, params);
    const BasicBlock renamed = rename_block(bb);
    EXPECT_LE(edge_count(renamed, scalar01()), edge_count(bb, scalar01()));
  }
}

TEST(Rename, UpdateFormBasesAreExempt) {
  const BasicBlock bb = parse_block(R"(
    LDU r1, x[r7+4]
    ADD r7, r1, r1
    LDU r2, x[r7+4]
  )");
  // r7 is an update base: it must never be renamed even though ADD
  // redefines it mid-block.
  RenameStats stats;
  const BasicBlock renamed = rename_block(bb, {}, &stats);
  for (const Instruction& inst : renamed.insts) {
    if (inst.mem.has_value()) {
      EXPECT_EQ(inst.mem->base, gpr(7));
    }
  }
  const InterpState init = InterpState::random(7);
  EXPECT_TRUE(run_block(renamed, init)
                  .equal_architectural(run_block(bb, init), 128));
}

TEST(Rename, PoolExhaustionIsGraceful) {
  // More renameable defs than the 2 available temps.
  RenameOptions opts;
  opts.temp_base = 254;
  const BasicBlock bb = parse_block(R"(
    LI r1, 1
    LI r1, 2
    LI r1, 3
    LI r1, 4
    LI r1, 5
  )");
  RenameStats stats;
  const BasicBlock renamed = rename_block(bb, opts, &stats);
  EXPECT_TRUE(stats.pool_exhausted);
  EXPECT_EQ(stats.defs_renamed, 2);
  const InterpState init = InterpState::random(8);
  EXPECT_TRUE(run_block(renamed, init)
                  .equal_architectural(run_block(bb, init), 254));
}

TEST(Rename, ImprovesOrPreservesScheduleQuality) {
  // Tight register pools serialize schedules via WAR/WAW; renaming must
  // never hurt and should win on some instances.
  Prng prng(0x4e4c);
  const MachineModel machine = deep_pipeline();
  int wins = 0;
  for (int trial = 0; trial < 25; ++trial) {
    RandomIrParams params;
    params.num_insts = 12;
    params.num_gprs = 3;
    params.mem_frac = 0.2;
    const BasicBlock bb = random_ir_block(prng, params);
    const BasicBlock renamed = rename_block(bb);

    const auto cycles = [&](const BasicBlock& block) {
      const DepGraph g = build_block_graph(block, machine);
      const auto order = schedule_block(g, machine, NodeSet::all(g.num_nodes()),
                                        BlockScheduler::kRank);
      return simulated_completion(g, machine, order, 4);
    };
    const Time before = cycles(bb);
    const Time after = cycles(renamed);
    EXPECT_LE(after, before) << "trial " << trial;
    wins += (after < before);
  }
  EXPECT_GT(wins, 0);
}

TEST(Rename, TraceRenamingAggregatesStats) {
  Prng prng(0x4e4d);
  RandomIrParams params;
  params.num_insts = 8;
  params.num_gprs = 3;
  const Trace trace = random_ir_trace(prng, params, 3);
  RenameStats stats;
  const Trace renamed = rename_trace(trace, {}, &stats);
  ASSERT_EQ(renamed.blocks.size(), 3u);
  EXPECT_GT(stats.defs_renamed, 0);
}

}  // namespace
}  // namespace ais
