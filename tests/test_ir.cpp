// Unit tests for the IR: instructions, the asm parser, and dependence
// analysis — including the Figure 3 graph built *from instructions* and
// checked against the hand-built paper graph.
#include <gtest/gtest.h>

#include <map>

#include "graph/topo.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "ir/instruction.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"

namespace ais {
namespace {

TEST(Instruction, FactoriesSetDefsAndUses) {
  const Instruction add = Instruction::alu(Opcode::kAdd, gpr(1), gpr(2), gpr(3));
  EXPECT_EQ(add.defs, (std::vector<Reg>{gpr(1)}));
  EXPECT_EQ(add.uses, (std::vector<Reg>{gpr(2), gpr(3)}));
  EXPECT_FALSE(add.is_mem());
  EXPECT_EQ(add.to_string(), "ADD r1, r2, r3");

  const Instruction ldu = Instruction::load(gpr(6), {gpr(7), 4, "x"}, true);
  EXPECT_EQ(ldu.op, Opcode::kLoadU);
  EXPECT_TRUE(ldu.is_load());
  // Update form defines both the destination and the base register.
  EXPECT_EQ(ldu.defs, (std::vector<Reg>{gpr(6), gpr(7)}));
  EXPECT_EQ(ldu.to_string(), "LDU r6, x[r7+4]");

  const Instruction st = Instruction::store({gpr(5), 4, "y"}, gpr(0), true);
  EXPECT_TRUE(st.is_store());
  EXPECT_EQ(st.defs, (std::vector<Reg>{gpr(5)}));
  EXPECT_EQ(st.to_string(), "STU y[r5+4], r0");

  const Instruction bt = Instruction::branch(Opcode::kBt, cr(1), "CL.1");
  EXPECT_TRUE(bt.is_branch());
  EXPECT_EQ(bt.to_string(), "BT c1, CL.1");
}

TEST(Instruction, RegToString) {
  EXPECT_EQ(gpr(5).to_string(), "r5");
  EXPECT_EQ(fpr(2).to_string(), "f2");
  EXPECT_EQ(cr(1).to_string(), "c1");
}

TEST(AsmParser, RoundTripsFig3Kernel) {
  const Loop loop = partial_product_kernel();
  ASSERT_EQ(loop.body.blocks.size(), 1u);
  const BasicBlock& bb = loop.body.blocks[0];
  ASSERT_EQ(bb.insts.size(), 5u);
  EXPECT_EQ(bb.label, "CL.18");
  EXPECT_EQ(bb.insts[0].to_string(), "LDU r6, x[r7+4]");
  EXPECT_EQ(bb.insts[1].to_string(), "STU y[r5+4], r0");
  EXPECT_EQ(bb.insts[2].to_string(), "CMP c1, r6, 0");
  EXPECT_EQ(bb.insts[3].to_string(), "MUL r0, r6, r0");
  EXPECT_EQ(bb.insts[4].to_string(), "BT c1, CL.1");
}

TEST(AsmParser, ParsesMultipleBlocksAndComments) {
  const Program prog = parse_program(R"(
    # a comment
    block a:
      LI r1, 7      ; trailing comment
      ADD r2, r1, 1
    block b:
      MOV r3, r2
  )");
  ASSERT_EQ(prog.blocks.size(), 2u);
  EXPECT_EQ(prog.blocks[0].label, "a");
  EXPECT_EQ(prog.blocks[0].insts.size(), 2u);
  EXPECT_EQ(prog.blocks[1].insts.size(), 1u);
}

TEST(AsmParser, ImplicitEntryBlockAndMemoryOperands) {
  const BasicBlock bb = parse_block(R"(
    LD r1, [r2-8]
    ST zone[r3+0], r1
  )");
  EXPECT_EQ(bb.label, "entry");
  ASSERT_EQ(bb.insts.size(), 2u);
  EXPECT_TRUE(bb.insts[0].mem->tag.empty());
  EXPECT_EQ(bb.insts[0].mem->offset, -8);
  EXPECT_EQ(bb.insts[1].mem->tag, "zone");
}

TEST(AsmParser, RejectsMalformedInput) {
  EXPECT_DEATH(parse_program("FROB r1, r2"), "unknown opcode");
  EXPECT_DEATH(parse_program("ADD 5, r1, r2"), "must be a register");
  EXPECT_DEATH(parse_program("LD r1, x[r2+4"), "unterminated memory");
  EXPECT_DEATH(parse_program("BT c1"), "must be a label");
  EXPECT_DEATH(parse_program("block :"), "block needs a label");
  EXPECT_DEATH(parse_program("ST x[nope+0], r1"), "bad memory base");
}

TEST(AsmParser, RoundTripsRenderedInstructions) {
  // to_string output must parse back to an identical instruction,
  // immediates included.
  const BasicBlock bb = parse_block(R"(
    LI  r1, -42
    SHL r2, r1, 3
    CMP c1, r2, 7
    ADD r3, r1, r2
    LDU r4, x[r7+8]
    STU y[r5+4], r3
  )");
  std::string rendered;
  for (const Instruction& inst : bb.insts) {
    rendered += inst.to_string() + "\n";
  }
  const BasicBlock reparsed = parse_block(rendered);
  ASSERT_EQ(reparsed.insts.size(), bb.insts.size());
  for (std::size_t i = 0; i < bb.insts.size(); ++i) {
    EXPECT_EQ(reparsed.insts[i].op, bb.insts[i].op) << i;
    EXPECT_EQ(reparsed.insts[i].defs, bb.insts[i].defs) << i;
    EXPECT_EQ(reparsed.insts[i].uses, bb.insts[i].uses) << i;
    EXPECT_EQ(reparsed.insts[i].imm, bb.insts[i].imm) << i;
    EXPECT_EQ(reparsed.insts[i].to_string(), bb.insts[i].to_string()) << i;
  }
}

TEST(DepBuild, RawWarWawWithinBlock) {
  const BasicBlock bb = parse_block(R"(
    LD  r1, x[r9+0]
    ADD r2, r1, r1
    ADD r1, r2, r2
  )");
  const DepGraph g = build_block_graph(bb, scalar01());
  ASSERT_EQ(g.num_nodes(), 3u);
  std::map<std::pair<NodeId, NodeId>, int> lat;
  for (const DepEdge& e : g.edges()) lat[{e.from, e.to}] = e.latency;
  // RAW load->add carries the load latency 1.
  ASSERT_TRUE(lat.count({0, 1}));
  EXPECT_EQ((lat[{0, 1}]), 1);
  // RAW add->add latency 0, plus WAR/WAW collapse into the same edge.
  ASSERT_TRUE(lat.count({1, 2}));
  EXPECT_EQ((lat[{1, 2}]), 0);
  // WAW ld->add (both define r1).
  ASSERT_TRUE(lat.count({0, 2}));
}

TEST(DepBuild, MemoryDisambiguationByTag) {
  const BasicBlock bb = parse_block(R"(
    ST a[r1+0], r2
    LD r3, b[r4+0]
    LD r5, a[r6+0]
  )");
  const DepGraph g = build_block_graph(bb, scalar01());
  bool st_to_b = false;
  bool st_to_a = false;
  for (const DepEdge& e : g.edges()) {
    if (e.from == 0 && e.to == 1) st_to_b = true;
    if (e.from == 0 && e.to == 2) st_to_a = true;
  }
  EXPECT_FALSE(st_to_b) << "distinct tags must not conflict";
  EXPECT_TRUE(st_to_a) << "same-tag store->load must conflict";

  DepBuildOptions opts;
  opts.disambiguate_memory = false;
  const DepGraph g2 = build_block_graph(bb, scalar01(), opts);
  EXPECT_GT(g2.num_edges(), g.num_edges());
}

TEST(DepBuild, UntaggedMemoryAliasesEverything) {
  const BasicBlock bb = parse_block(R"(
    ST [r1+0], r2
    LD r3, b[r4+0]
  )");
  const DepGraph g = build_block_graph(bb, scalar01());
  bool conflict = false;
  for (const DepEdge& e : g.edges()) {
    if (e.from == 0 && e.to == 1) conflict = true;
  }
  EXPECT_TRUE(conflict);
}

TEST(DepBuild, ControlDependencesTargetBranch) {
  const BasicBlock bb = parse_block(R"(
    ADD r1, r2, r3
    ADD r4, r5, r6
    CMP c1, r1
    BT  c1, out
  )");
  const DepGraph g = build_block_graph(bb, scalar01());
  // Every non-branch node must have an edge to the branch (node 3).
  for (NodeId id = 0; id < 3; ++id) {
    bool found = false;
    for (const auto eidx : g.out_edges(id)) {
      if (g.edge(eidx).to == 3 && g.edge(eidx).distance == 0) found = true;
    }
    EXPECT_TRUE(found) << "node " << id;
  }

  DepBuildOptions opts;
  opts.control_deps = false;
  const DepGraph g2 = build_block_graph(bb, scalar01(), opts);
  // Without control deps the independent ADD r4 has no path to the branch.
  bool add2_to_bt = false;
  for (const auto eidx : g2.out_edges(1)) {
    if (g2.edge(eidx).to == 3) add2_to_bt = true;
  }
  EXPECT_FALSE(add2_to_bt);
}

TEST(DepBuild, BranchMustBeLast) {
  BasicBlock bb;
  bb.label = "bad";
  bb.insts.push_back(Instruction::jump("x"));
  bb.insts.push_back(Instruction::nop());
  EXPECT_DEATH(build_block_graph(bb, scalar01()), "branch must be the final");
}

TEST(DepBuild, TraceCrossBlockRegisterDependence) {
  const Program prog = parse_program(R"(
    block one:
      LD r1, x[r9+0]
      ADD r2, r1, r1
    block two:
      ADD r3, r2, r2
  )");
  const DepGraph g = build_trace_graph(Trace{prog.blocks}, scalar01());
  EXPECT_EQ(g.node(2).block, 1);
  bool cross = false;
  for (const DepEdge& e : g.edges()) {
    if (g.node(e.from).block == 0 && g.node(e.to).block == 1) cross = true;
  }
  EXPECT_TRUE(cross);
}

TEST(DepBuild, Fig3LoopGraphMatchesPaperGraph) {
  // Build Figure 3 from its *instructions* on the RS/6000-like machine and
  // compare the dependence structure against the hand-reconstructed graph.
  const DepGraph from_ir =
      build_loop_graph(partial_product_kernel(), rs6000_like());
  const DepGraph reference = fig3_loop();

  ASSERT_EQ(from_ir.num_nodes(), reference.num_nodes());
  // Collect edges as (from, to, distance) -> latency maps.
  auto edge_map = [](const DepGraph& g) {
    std::map<std::tuple<NodeId, NodeId, int>, int> m;
    for (const DepEdge& e : g.edges()) {
      auto [it, inserted] = m.emplace(std::make_tuple(e.from, e.to, e.distance),
                                      e.latency);
      if (!inserted) it->second = std::max(it->second, e.latency);
    }
    return m;
  };
  const auto ir_edges = edge_map(from_ir);
  const auto ref_edges = edge_map(reference);

  // Every reference edge must exist with at least the reference latency
  // (the IR analysis may add a few more conservative ordering edges, and
  // derives ST->ST latency 0 where the reference uses the generic 1).
  for (const auto& [key, latency] : ref_edges) {
    const auto& [from, to, distance] = key;
    if (from == to && from == 1) continue;  // ST self-dep latency differs
    const auto it = ir_edges.find(key);
    ASSERT_TRUE(it != ir_edges.end())
        << "missing edge " << from << "->" << to << " d" << distance;
    EXPECT_GE(it->second, latency)
        << "edge " << from << "->" << to << " d" << distance;
  }
  // The critical carried dependences must match exactly.
  EXPECT_EQ((ir_edges.at({3, 1, 1})), 4);  // M -> ST <4,1>
  EXPECT_EQ((ir_edges.at({3, 3, 1})), 4);  // M -> M <4,1>
  EXPECT_EQ((ir_edges.at({0, 0, 1})), 1);  // L4 -> L4 <1,1>
}

TEST(DepBuild, LoopCarriedAccumulator) {
  const DepGraph g = build_loop_graph(dot_kernel(), rs6000_like());
  // FMA accumulates into f0: there must be a carried self-dependence on the
  // FMA node with the FP-multiply latency.
  const NodeId fma = g.find("FMA f0, f1, f2, f0");
  ASSERT_NE(fma, kInvalidNode);
  bool carried_self = false;
  for (const auto eidx : g.out_edges(fma)) {
    const DepEdge& e = g.edge(eidx);
    if (e.to == fma && e.distance == 1 && e.latency == 2) carried_self = true;
  }
  EXPECT_TRUE(carried_self);
}

TEST(DepBuild, AllKernelsProduceValidLoops) {
  for (const auto& [name, loop] : all_loop_kernels()) {
    const DepGraph g = build_loop_graph(loop, rs6000_like());
    EXPECT_GT(g.num_nodes(), 0u) << name;
    EXPECT_TRUE(is_acyclic(g, NodeSet::all(g.num_nodes()))) << name;
    EXPECT_TRUE(g.has_carried_edges()) << name;
  }
}

TEST(DepBuild, SampleTraceHasThreeBlocks) {
  const DepGraph g = build_trace_graph(sample_trace(), rs6000_like());
  int max_block = 0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    max_block = std::max(max_block, g.node(id).block);
  }
  EXPECT_EQ(max_block, 2);
  EXPECT_TRUE(is_acyclic(g, NodeSet::all(g.num_nodes())));
}

}  // namespace
}  // namespace ais
