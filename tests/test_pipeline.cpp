// Tests for the software-pipelining substrate: MII bounds, modulo
// scheduling, kernel-graph construction, and AIS-as-a-post-pass (§2.4).
#include <gtest/gtest.h>

#include "core/loop_single.hpp"
#include "graph/topo.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "pipeline/modulo.hpp"
#include "sim/loop_sim.hpp"
#include "workloads/kernels.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

TEST(ModuloMii, ResourceBoundCountsClassesAndWidth) {
  const MachineModel machine = vliw4();  // 2 int units, 1 mem, 1 fp, width 4
  DepGraph g;
  for (int i = 0; i < 6; ++i) {
    g.add_node("a" + std::to_string(i), 1,
               machine.timing(OpClass::kIntAlu).fu_class, 0);
  }
  // 6 int ops on 2 int units: ResMII = 3.
  EXPECT_EQ(resource_mii(g, machine), 3);
  // Adding 6 loads on the single mem unit pushes it to 6.
  for (int i = 0; i < 6; ++i) {
    g.add_node("l" + std::to_string(i), 1,
               machine.timing(OpClass::kLoad).fu_class, 0);
  }
  EXPECT_EQ(resource_mii(g, machine), 6);
}

TEST(ModuloMii, RecurrenceBoundFromCarriedCycle) {
  // Fig. 3: the cycle M -> ST <4,1> -> M (anti, <0,0>) costs
  // exec(M) + 4 + exec(ST) = 6 per iteration — exactly the 6-cycle steady
  // state the paper's schedule 2 achieves (the M -> M <4,1> self-cycle
  // alone would only force 5).
  EXPECT_EQ(recurrence_mii(fig3_loop()), 6);

  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, 2, 0);
  g.add_edge(b, a, 2, 1);  // cycle: 1+2+1+2 over distance 1 -> II >= 6
  EXPECT_EQ(recurrence_mii(g), 6);

  DepGraph free_g;
  free_g.add_node("x");
  EXPECT_EQ(recurrence_mii(free_g), 1);
}

TEST(ModuloSchedule, AchievesMiiOnFig3) {
  const DepGraph g = fig3_loop();
  const MachineModel machine = scalar01();
  const ModuloSchedule s = modulo_schedule(g, machine);
  ASSERT_TRUE(s.found);
  // MII = max(ResMII = 5 nodes on 1 unit, RecMII = 6) = 6 — the modulo
  // scheduler lands exactly on the paper's best initiation interval.
  EXPECT_EQ(s.ii, 6);
  // Verify every constraint directly.
  for (const DepEdge& e : g.edges()) {
    EXPECT_GE(s.start[e.to], s.start[e.from] + g.node(e.from).exec_time +
                                 e.latency - static_cast<Time>(s.ii) *
                                                 e.distance);
  }
}

TEST(ModuloSchedule, RespectsReservationTable) {
  Prng prng(0x3037);
  for (int trial = 0; trial < 10; ++trial) {
    RandomLoopParams params;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 9));
    params.block.edge_prob = 0.35;
    params.block.max_latency = 3;
    params.carried_edges = 2;
    const DepGraph g = random_loop(prng, params);
    const MachineModel machine = deep_pipeline();
    const ModuloSchedule s = modulo_schedule(g, machine);
    ASSERT_TRUE(s.found) << "trial " << trial;
    EXPECT_GE(s.ii, resource_mii(g, machine));
    EXPECT_GE(s.ii, recurrence_mii(g));
    // No slot oversubscribed.
    std::vector<int> per_slot(static_cast<std::size_t>(s.ii), 0);
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      ++per_slot[static_cast<std::size_t>(s.slot(id))];
    }
    for (const int used : per_slot) {
      EXPECT_LE(used, machine.issue_width());
    }
  }
}

TEST(KernelGraph, DistancesAreStageAdjustedAndAcyclic) {
  const DepGraph g = fig3_loop();
  const ModuloSchedule s = modulo_schedule(g, scalar01());
  ASSERT_TRUE(s.found);
  std::vector<NodeId> kernel_to_original;
  const DepGraph k = kernel_graph(g, s, &kernel_to_original);
  EXPECT_EQ(k.num_nodes(), g.num_nodes());
  EXPECT_EQ(kernel_to_original.size(), g.num_nodes());
  EXPECT_TRUE(is_acyclic(k, NodeSet::all(k.num_nodes())));
  // The kernel sustains the initiation interval on an ideal (wide-window)
  // machine: simulated steady state <= II (it may beat II only if the
  // schedule was not tight; >= recurrence bound always).
  std::vector<NodeId> order;
  for (NodeId id = 0; id < k.num_nodes(); ++id) order.push_back(id);
  const double period = steady_state_period(k, scalar01(), order, 8);
  EXPECT_LE(period, static_cast<double>(s.ii) + 1e-9);
  EXPECT_GE(period, static_cast<double>(recurrence_mii(g)) - 1e-9);
}

TEST(KernelGraph, PostPassNeverHurtsSteadyState) {
  // §2.4: AIS as a post-pass to software pipelining.  Reordering the kernel
  // through the §5.2.3 candidate search must never slow it down, at any
  // window size.
  Prng prng(0x3038);
  const MachineModel machine = deep_pipeline();
  for (int trial = 0; trial < 8; ++trial) {
    RandomLoopParams params;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 8));
    params.block.edge_prob = 0.4;
    params.block.max_latency = 4;
    params.carried_edges = static_cast<int>(prng.uniform(1, 3));
    const DepGraph g = random_loop(prng, params);
    const ModuloSchedule s = modulo_schedule(g, machine);
    ASSERT_TRUE(s.found);
    const DepGraph k = kernel_graph(g, s);

    std::vector<NodeId> natural;
    for (NodeId id = 0; id < k.num_nodes(); ++id) natural.push_back(id);

    for (const int w : {1, 2}) {
      const double before = steady_state_period(k, machine, natural, w);
      LoopSingleOptions opts;
      opts.prune = LoopSingleOptions::Prune::kNever;
      const LoopCandidate best = schedule_single_block_loop(
          k, machine,
          [&](const std::vector<NodeId>& order) {
            return steady_state_period(k, machine, order, w);
          },
          opts);
      const double after = steady_state_period(k, machine, best.order, w);
      EXPECT_LE(after, before + 1e-9) << "trial " << trial << " W=" << w;
    }
  }
}

TEST(ModuloSchedule, Fig3KernelMatchesPaperStageSplit) {
  // In the paper's software-pipelined CL.18, the STORE belongs to the
  // previous iteration — i.e. a later stage than the MULTIPLY that feeds
  // it.  Pipelining the *kernel the paper printed* reproduces that stage
  // relationship from the raw dependences.
  const DepGraph g = build_loop_graph(partial_product_kernel(), rs6000_like());
  const ModuloSchedule s = modulo_schedule(g, rs6000_like());
  ASSERT_TRUE(s.found);
  const NodeId m = g.find("MUL r0, r6, r0");
  const NodeId st = g.find("STU y[r5+4], r0");
  ASSERT_NE(m, kInvalidNode);
  ASSERT_NE(st, kInvalidNode);
  // The store consumes the multiply across an iteration boundary; in the
  // modulo schedule it must start at least latency(M) after M, modulo II.
  EXPECT_GE(s.start[st] + s.ii,
            s.start[m] + 1 + 4);  // M -> ST <4,1> constraint at distance 1
}

TEST(ModuloSchedule, InfeasibleBudgetReportsNotFound) {
  Prng prng(0x3039);
  RandomLoopParams params;
  params.block.num_nodes = 24;  // more nodes than the fixed budget floor
  params.block.edge_prob = 0.5;
  params.block.max_latency = 4;
  params.carried_edges = 3;
  const DepGraph g = random_loop(prng, params);
  ModuloScheduleOptions opts;
  opts.max_ii_slack = 0;
  opts.budget_factor = 0;  // budget too small to place anything
  const ModuloSchedule s = modulo_schedule(g, deep_pipeline(), opts);
  EXPECT_FALSE(s.found);
}

}  // namespace
}  // namespace ais
