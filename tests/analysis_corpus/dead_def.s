# Fixture for rule `dead-def` (machine: rs6000).
#
# Block B1 defines r3 and never reads it; block B2 — reached by fallthrough —
# overwrites r3 before any use.  The definition in B1 is dead across the
# block boundary, which the same-block `dead-write` lint cannot see.
block B1:
  LI r3, 1
  LI r2, 2
block B2:
  LI r3, 5
  ST a[r2+0], r3
