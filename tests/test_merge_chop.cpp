// Tests for Procedure Merge (Fig. 7) and Procedure Chop (Fig. 6).
#include <gtest/gtest.h>

#include "core/chop.hpp"
#include "core/merge.hpp"
#include "core/move_idle.hpp"
#include "core/rank.hpp"
#include "machine/machine_model.hpp"
#include "verify/schedule_check.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

NodeSet block_set(const DepGraph& g, int block) {
  NodeSet s(g.num_nodes());
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).block == block) s.insert(id);
  }
  return s;
}

TEST(Merge, Fig2MergedScheduleAndDeadlines) {
  const DepGraph g = fig2_trace();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet bb1 = block_set(g, 0);
  const NodeSet bb2 = block_set(g, 1);

  // As in the paper's walkthrough: BB1 deadlines are its standalone
  // completion time 7; merge BB2 into it.
  DeadlineMap d = uniform_deadlines(g, 100);
  for (const NodeId id : bb1.ids()) d[id] = 7;

  const MergeResult m =
      merge_blocks(scheduler, bb1, bb2, d, /*t_old=*/7, /*huge=*/100, {});
  EXPECT_EQ(m.makespan, 11);
  // Old nodes keep deadlines <= 7; new nodes got the merged bound 11.
  for (const NodeId id : bb1.ids()) EXPECT_LE(m.deadlines[id], 7);
  for (const NodeId id : bb2.ids()) EXPECT_EQ(m.deadlines[id], 11);
  // Old nodes are never displaced past their caps.
  for (const NodeId id : bb1.ids()) {
    EXPECT_LE(m.schedule.completion(id), 7);
  }
  EXPECT_EQ(validate_schedule(m.schedule, scalar01()), "");

  // The independent verifier agrees on both counts.
  EXPECT_TRUE(verify::check_schedule(m.schedule, scalar01()).ok());
  EXPECT_TRUE(verify::check_merge_fill(m.schedule, bb1, d, /*t_old=*/7).ok());
}

TEST(Merge, RetainsPreassignedTighterDeadline) {
  const DepGraph g = fig2_trace();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet bb1 = block_set(g, 0);
  const NodeSet bb2 = block_set(g, 1);
  DeadlineMap d = uniform_deadlines(g, 100);
  d[g.find("x")] = 1;  // "the algorithm has already determined" d(x)=1
  const MergeResult m =
      merge_blocks(scheduler, bb1, bb2, d, /*t_old=*/7, /*huge=*/100, {});
  EXPECT_EQ(m.deadlines[g.find("x")], 1);
  EXPECT_EQ(m.schedule.completion(g.find("x")), 1);
  EXPECT_EQ(m.makespan, 11);
}

TEST(Merge, EmptyOldIsPlainBlockSchedule) {
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet none(g.num_nodes());
  const NodeSet all = NodeSet::all(g.num_nodes());
  const MergeResult m =
      merge_blocks(scheduler, none, all, uniform_deadlines(g, 100), 0, 100, {});
  EXPECT_EQ(m.makespan, 7);
  for (const NodeId id : all.ids()) EXPECT_EQ(m.deadlines[id], 7);
}

TEST(Merge, RelaxesNewDeadlinesWhenLowerBoundInfeasible) {
  // old = {a} with deadline 1 (it must occupy slot 0); new = chain u->v
  // with latency 1.  The unconstrained bound is 3 (u a v), but with a
  // pinned at slot 0 the best is u a v anyway... build a case where the
  // lower bound is genuinely infeasible: old = {a1, a2} pinned to slots
  // 0..1, new = u->v latency 1 starting after.
  DepGraph g;
  const NodeId a1 = g.add_node("a1", 1, 0, 0);
  const NodeId a2 = g.add_node("a2", 1, 0, 0);
  const NodeId u = g.add_node("u", 1, 0, 1);
  const NodeId v = g.add_node("v", 1, 0, 1);
  g.add_edge(a1, a2, 1);
  g.add_edge(u, v, 1);
  const RankScheduler scheduler(g, scalar01());
  NodeSet old_set(g.num_nodes(), {a1, a2});
  NodeSet new_set(g.num_nodes(), {u, v});
  DeadlineMap d = uniform_deadlines(g, 100);
  d[a1] = 1;
  d[a2] = 3;
  // Unconstrained optimum is 4 (a1 u a2 v); that stays feasible here.
  const MergeResult m =
      merge_blocks(scheduler, old_set, new_set, d, /*t_old=*/3, 100, {});
  EXPECT_TRUE(m.makespan >= 4);
  EXPECT_EQ(validate_schedule(m.schedule, scalar01()), "");
  EXPECT_LE(m.schedule.completion(a1), 1);
  EXPECT_LE(m.schedule.completion(a2), 3);
}

TEST(Merge, NewNodesOnlyFillIdleSlotsProperty) {
  Prng prng(0x3324);
  for (int trial = 0; trial < 12; ++trial) {
    RandomTraceParams params;
    params.num_blocks = 2;
    params.block.num_nodes = static_cast<int>(prng.uniform(4, 10));
    params.block.edge_prob = 0.35;
    params.cross_edges = 2;
    const DepGraph g = random_trace(prng, params);
    const RankScheduler scheduler(g, scalar01());
    const NodeSet bb1 = block_set(g, 0);
    const NodeSet bb2 = block_set(g, 1);

    // Schedule BB1 alone; its makespan caps its nodes in the merge.
    DeadlineMap d = uniform_deadlines(g, huge_deadline(g, NodeSet::all(g.num_nodes())));
    const RankResult alone = scheduler.run(bb1, d, {});
    ASSERT_TRUE(alone.feasible);
    for (const NodeId id : bb1.ids()) d[id] = alone.makespan;

    const MergeResult m = merge_blocks(scheduler, bb1, bb2, d,
                                       alone.makespan,
                                       huge_deadline(g, NodeSet::all(g.num_nodes())), {});
    for (const NodeId id : bb1.ids()) {
      EXPECT_LE(m.schedule.completion(id), alone.makespan)
          << "old node displaced beyond its standalone makespan";
    }
    EXPECT_EQ(validate_schedule(m.schedule, scalar01()), "");

    // Same invariant, asserted through the independent verifier.
    const verify::Report fill =
        verify::check_merge_fill(m.schedule, bb1, d, alone.makespan);
    EXPECT_TRUE(fill.ok()) << fill.to_string();
    EXPECT_TRUE(verify::check_schedule(m.schedule, scalar01()).ok());
  }
}

TEST(Chop, EmitsPrefixUpToLastEligibleIdleSlot) {
  // Schedule shape x e r w b . a with W = 1 (strict in-order hardware): the
  // idle slot at 5 has one (>= W) node after it, so everything before is
  // emitted.
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  DeadlineMap d = uniform_deadlines(g, 100);
  RankResult r = scheduler.run(all, d, {});
  for (const NodeId id : all.ids()) d[id] = r.makespan;
  Schedule s = delay_idle_slots(scheduler, std::move(r.schedule), d, {});
  ASSERT_EQ(s.idle_slots().size(), 1u);
  ASSERT_EQ(s.idle_slots()[0].time, 5);

  const ChopResult c = chop(s, d, /*window=*/1);
  EXPECT_EQ(c.emitted.size(), 5u);
  EXPECT_EQ(c.suffix.ids(), (std::vector<NodeId>{g.find("a")}));
  EXPECT_EQ(c.suffix_makespan, 1);
  // a's deadline was 7 and is rebased by t_j + 1 = 6.
  EXPECT_EQ(d[g.find("a")], 1);
}

TEST(Chop, SlotStillReachableThroughWindowIsRetained) {
  // Same schedule with W = 2: a future instruction one position past `a`
  // could still fill the slot at t = 5 (inversion span 2 <= W), so nothing
  // may be emitted.
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  DeadlineMap d = uniform_deadlines(g, 100);
  RankResult r = scheduler.run(all, d, {});
  for (const NodeId id : all.ids()) d[id] = r.makespan;
  Schedule s = delay_idle_slots(scheduler, std::move(r.schedule), d, {});
  const ChopResult c = chop(s, d, /*window=*/2);
  EXPECT_TRUE(c.emitted.empty());
  EXPECT_EQ(c.suffix.size(), 6u);
}

TEST(Chop, KeepsEverythingWithLargeWindow) {
  const DepGraph g = fig1_bb1();
  const RankScheduler scheduler(g, scalar01());
  const NodeSet all = NodeSet::all(g.num_nodes());
  DeadlineMap d = uniform_deadlines(g, 100);
  RankResult r = scheduler.run(all, d, {});
  const DeadlineMap before = d;
  // W = 7 > 6 nodes: retain all.
  const ChopResult c = chop(r.schedule, d, /*window=*/7);
  EXPECT_TRUE(c.emitted.empty());
  EXPECT_EQ(c.suffix.size(), 6u);
  EXPECT_EQ(c.suffix_makespan, 7);
  EXPECT_EQ(d, before);
}

TEST(Chop, KeepsEverythingWithoutIdleSlots) {
  DepGraph g;
  for (int i = 0; i < 5; ++i) g.add_node("n" + std::to_string(i));
  const RankScheduler scheduler(g, scalar01());
  DeadlineMap d = uniform_deadlines(g, 100);
  RankResult r = scheduler.run(NodeSet::all(5), d, {});
  ASSERT_TRUE(r.schedule.idle_slots().empty());
  const ChopResult c = chop(r.schedule, d, 2);
  EXPECT_TRUE(c.emitted.empty());
  EXPECT_EQ(c.suffix.size(), 5u);
}

TEST(Chop, SuffixStartsAfterSplitAndPartitionsNodes) {
  Prng prng(0xc40b);
  for (int trial = 0; trial < 12; ++trial) {
    RandomBlockParams params;
    params.num_nodes = static_cast<int>(prng.uniform(6, 14));
    params.edge_prob = 0.4;
    const DepGraph g = random_block(prng, params);
    const RankScheduler scheduler(g, scalar01());
    const NodeSet all = NodeSet::all(g.num_nodes());
    DeadlineMap d = uniform_deadlines(g, huge_deadline(g, all));
    RankResult r = scheduler.run(all, d, {});
    for (const NodeId id : all.ids()) d[id] = r.makespan;
    const Time makespan = r.makespan;
    const int window = static_cast<int>(prng.uniform(1, 5));
    const ChopResult c = chop(r.schedule, d, window);
    EXPECT_EQ(c.emitted.size() + c.suffix.size(), g.num_nodes());
    if (!c.emitted.empty()) {
      EXPECT_GE(static_cast<int>(c.suffix.size()), window);
      EXPECT_LT(c.suffix_makespan, makespan);
    } else {
      EXPECT_EQ(c.suffix_makespan, makespan);
    }
  }
}

}  // namespace
}  // namespace ais
