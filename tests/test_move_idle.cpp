// Tests for Move_Idle_Slot / Delay_Idle_Slots (paper Figs. 4 and 6).
#include <gtest/gtest.h>

#include "core/move_idle.hpp"
#include "core/rank.hpp"
#include "machine/machine_model.hpp"
#include "workloads/paper_graphs.hpp"
#include "workloads/random_graphs.hpp"

namespace ais {
namespace {

/// Builds the Figure 1 rank schedule with the paper's tie order (e first),
/// normalized deadlines (= makespan) ready for idle-slot motion.
struct Fig1Setup {
  DepGraph g = fig1_bb1();
  MachineModel machine = scalar01();
  RankScheduler scheduler{g, machine};
  NodeSet all = NodeSet::all(g.num_nodes());
  RankOptions opts;
  DeadlineMap d = uniform_deadlines(g, 100);
  Schedule schedule{&g, NodeSet(g.num_nodes()), 1};

  Fig1Setup() {
    opts.tie_break.assign(g.num_nodes(), 0);
    opts.tie_break[g.find("e")] = -1;
    RankResult r = scheduler.run(all, d, opts);
    EXPECT_EQ(r.makespan, 7);
    for (const NodeId id : all.ids()) d[id] = r.makespan;
    schedule = std::move(r.schedule);
  }
};

TEST(MoveIdleSlot, Fig1DelaysSlotFrom2To5) {
  Fig1Setup fx;
  ASSERT_EQ(fx.schedule.idle_slots(),
            (std::vector<IdleSlot>{IdleSlot{0, 2}}));
  const MoveIdleResult res =
      move_idle_slot(fx.scheduler, fx.schedule, fx.d, IdleSlot{0, 2}, fx.opts);
  EXPECT_TRUE(res.moved);
  EXPECT_GT(res.slot.time, 2);
  EXPECT_EQ(res.schedule.makespan(), 7);
  // Deadline reductions were committed; the paper derives d(x) = 1.
  EXPECT_LE(fx.d[fx.g.find("x")], 2);
}

TEST(MoveIdleSlot, FailureLeavesScheduleAndDeadlinesUntouched) {
  Fig1Setup fx;
  // First push the slot as late as possible.
  Schedule delayed =
      delay_idle_slots(fx.scheduler, fx.schedule, fx.d, fx.opts);
  const auto slots = delayed.idle_slots();
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].time, 5);
  const DeadlineMap before = fx.d;
  // The slot at t=5 cannot move further: a must be last (needs both w and b
  // plus latency) and the makespan is 7.
  const MoveIdleResult res =
      move_idle_slot(fx.scheduler, delayed, fx.d, slots[0], fx.opts);
  EXPECT_FALSE(res.moved);
  EXPECT_EQ(res.slot, slots[0]);
  EXPECT_EQ(fx.d, before);
  EXPECT_EQ(res.schedule.permutation(), delayed.permutation());
}

TEST(DelayIdleSlots, Fig1FullDelayReachesT5) {
  Fig1Setup fx;
  const Schedule delayed =
      delay_idle_slots(fx.scheduler, fx.schedule, fx.d, fx.opts);
  EXPECT_EQ(delayed.makespan(), 7);
  const auto slots = delayed.idle_slots();
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].time, 5);
  EXPECT_EQ(validate_schedule(delayed, fx.machine), "");
}

TEST(DelayIdleSlots, NoIdleSlotsIsANoOp) {
  DepGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, 0);
  const RankScheduler scheduler(g, scalar01());
  DeadlineMap d = uniform_deadlines(g, 100);
  RankResult r = scheduler.run(NodeSet::all(2), d, {});
  ASSERT_TRUE(r.schedule.idle_slots().empty());
  const auto perm = r.schedule.permutation();
  const Schedule s =
      delay_idle_slots(scheduler, std::move(r.schedule), d, {});
  EXPECT_EQ(s.permutation(), perm);
}

// Property sweep: delaying never changes the makespan, never moves any idle
// slot earlier, and a second application is a fixpoint.
class DelayIdleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelayIdleProperty, MakespanPreservedSlotsMonotoneFixpoint) {
  Prng prng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    RandomBlockParams params;
    params.num_nodes = static_cast<int>(prng.uniform(4, 14));
    params.edge_prob = prng.uniform01() * 0.5;
    const DepGraph g = random_block(prng, params);
    const RankScheduler scheduler(g, scalar01());
    const NodeSet all = NodeSet::all(g.num_nodes());
    DeadlineMap d = uniform_deadlines(g, huge_deadline(g, all));
    RankResult r = scheduler.run(all, d, {});
    ASSERT_TRUE(r.feasible);
    for (const NodeId id : all.ids()) d[id] = r.makespan;

    const auto before = r.schedule.idle_slots();
    const Schedule delayed =
        delay_idle_slots(scheduler, std::move(r.schedule), d, {});
    const auto after = delayed.idle_slots();

    EXPECT_EQ(delayed.makespan(), r.makespan);
    EXPECT_EQ(validate_schedule(delayed, scalar01()), "");
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t i = 0; i < after.size(); ++i) {
      EXPECT_GE(after[i].time, before[i].time) << "slot " << i;
    }

    // Fixpoint: a second pass changes nothing.
    DeadlineMap d2 = d;
    const Schedule again = delay_idle_slots(scheduler, delayed, d2, {});
    const auto after2 = again.idle_slots();
    ASSERT_EQ(after2.size(), after.size());
    for (std::size_t i = 0; i < after.size(); ++i) {
      EXPECT_EQ(after2[i].time, after[i].time) << "slot " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelayIdleProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(DelayIdleSlots, HeuristicMachinesStayValid) {
  Prng prng(0xd1e);
  using MachineFactory = MachineModel (*)();
  for (const MachineFactory make : {MachineFactory{rs6000_like},
                                    MachineFactory{deep_pipeline},
                                    MachineFactory{vliw4}}) {
    const MachineModel machine = make();
    for (int trial = 0; trial < 5; ++trial) {
      const DepGraph g = random_machine_block(prng, machine, 16, 0.25);
      const RankScheduler scheduler(g, machine);
      const NodeSet all = NodeSet::all(g.num_nodes());
      DeadlineMap d = uniform_deadlines(g, huge_deadline(g, all));
      RankResult r = scheduler.run(all, d, {});
      ASSERT_TRUE(r.feasible);
      for (const NodeId id : all.ids()) d[id] = r.makespan;
      const Schedule delayed =
          delay_idle_slots(scheduler, std::move(r.schedule), d, {});
      EXPECT_LE(delayed.makespan(), r.makespan);
      EXPECT_EQ(validate_schedule(delayed, machine), "");
    }
  }
}

}  // namespace
}  // namespace ais
