// Unit tests for machine models and presets.
#include <gtest/gtest.h>

#include "machine/machine_model.hpp"

namespace ais {
namespace {

TEST(MachineModel, ScalarPresetIsRestrictedCase) {
  const MachineModel m = scalar01();
  EXPECT_TRUE(m.is_restricted_case());
  EXPECT_EQ(m.total_units(), 1);
  EXPECT_EQ(m.issue_width(), 1);
  EXPECT_EQ(m.timing(OpClass::kLoad).latency, 1);
  EXPECT_EQ(m.timing(OpClass::kIntAlu).latency, 0);
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    EXPECT_EQ(m.timing(static_cast<OpClass>(c)).exec_time, 1);
  }
}

TEST(MachineModel, Rs6000MatchesFig3Latencies) {
  const MachineModel m = rs6000_like();
  EXPECT_FALSE(m.is_restricted_case());
  EXPECT_EQ(m.timing(OpClass::kLoad).latency, 1);
  EXPECT_EQ(m.timing(OpClass::kCompare).latency, 1);
  EXPECT_EQ(m.timing(OpClass::kIntMul).latency, 4);
  EXPECT_EQ(m.num_fu_classes(), 3);
  EXPECT_EQ(m.issue_width(), 1);
}

TEST(MachineModel, DeepPipelineIsSingleUnitButNotRestricted) {
  const MachineModel m = deep_pipeline();
  EXPECT_EQ(m.total_units(), 1);
  EXPECT_FALSE(m.is_restricted_case());  // latencies up to 4
}

TEST(MachineModel, Vliw4UnitsAndWidth) {
  const MachineModel m = vliw4();
  EXPECT_EQ(m.total_units(), 4);
  EXPECT_EQ(m.issue_width(), 4);
  EXPECT_EQ(m.fu_count(0), 2);
  EXPECT_EQ(m.fu_count(1), 1);
  EXPECT_FALSE(m.is_restricted_case());
}

TEST(MachineModel, OpClassNamesAreDistinct) {
  std::set<std::string> names;
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    names.insert(op_class_name(static_cast<OpClass>(c)));
  }
  EXPECT_EQ(names.size(), kNumOpClasses);
}

TEST(MachineModel, DefaultWindowIsSmall) {
  // §2.3: "W is usually very small (typically < 10)".
  EXPECT_LT(scalar01().default_window(), 10);
  EXPECT_LT(rs6000_like().default_window(), 10);
  EXPECT_LT(deep_pipeline().default_window(), 10);
  EXPECT_LT(vliw4().default_window(), 10);
}

}  // namespace
}  // namespace ais
